"""The telemetry registry: counters, gauges, latency histograms, spans.

Design constraints, in order:

1. **Zero overhead when off.**  Every instrumented hot path holds a
   reference to the *active* telemetry (captured at construction via
   :func:`get`) and pays exactly one attribute check —
   ``if telemetry.enabled:`` — per instrumentation point when telemetry
   is disabled.  The disabled implementation is the shared
   :data:`NULL` singleton; nothing is allocated, locked, or formatted.
2. **No samples stored.**  Latency distributions go into streaming
   :class:`LatencyHistogram`\\ s with a fixed logarithmic bucket layout,
   so p50/p95/p99 are answerable at any moment from ``O(buckets)``
   memory regardless of how many observations were recorded.
3. **Deterministic workloads stay deterministic.**  Telemetry only ever
   observes — it never feeds back into allocation, routing, or worker
   behaviour, so traces are byte-identical with telemetry on or off
   (the pinned campaign-trace tests enforce this).

Enable telemetry one of three ways:

* ``REPRO_TELEMETRY=1`` in the environment (optionally
  ``REPRO_TELEMETRY_OUT=trace.jsonl`` for the trace stream) — picked up
  at import time;
* a :class:`~repro.api.specs.TelemetrySpec` on a runnable spec —
  :func:`repro.api.run` activates it for the duration of the run and
  embeds the snapshot in ``RunResult.telemetry``;
* programmatically: ``with obs.activated(Telemetry()): ...``.

Spans aggregate into the same histograms as direct :meth:`Telemetry.\
observe` calls, and — when the telemetry was built with a
``trace_path`` — additionally emit one JSON line per span in the Chrome
trace-event format (``ph: "X"``, microsecond ``ts``/``dur``), so a
recorded run can be opened in any trace viewer for flamegraph-style
analysis.  ``repro-tagging stats`` renders either a snapshot or a trace
file as a table.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from bisect import bisect_left
from typing import Any, TextIO

__all__ = [
    "BUCKETS_PER_DECADE",
    "GROWTH",
    "LatencyHistogram",
    "NullTelemetry",
    "Telemetry",
    "NULL",
    "activated",
    "get",
    "set_active",
    "telemetry_from_env",
]

# ----------------------------------------------------------------------
# histogram layout
# ----------------------------------------------------------------------

BUCKETS_PER_DECADE = 16
"""Log-bucket resolution: quantile estimates carry at most one bucket's
relative error, i.e. a factor of ``10 ** (1/16) ~= 1.155``."""

GROWTH = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
"""Upper/lower bound ratio of one bucket."""

_LOW = 1e-3  # 1 microsecond, in milliseconds
_DECADES = 8  # up to 1e5 ms (~100 s) before the overflow bucket
_N_BUCKETS = BUCKETS_PER_DECADE * _DECADES

_BOUNDS: list[float] = [
    _LOW * 10.0 ** (i / BUCKETS_PER_DECADE) for i in range(_N_BUCKETS + 1)
]
"""Shared bucket boundaries (ms).  Bucket ``k`` (1-based) covers
``(_BOUNDS[k-1], _BOUNDS[k]]``; bucket 0 is the underflow
``(-inf, _BOUNDS[0]]`` and bucket ``len(_BOUNDS)`` the overflow."""


class LatencyHistogram:
    """A streaming histogram over the fixed logarithmic bucket layout.

    Values are whatever unit the caller feeds (milliseconds for spans);
    only positive magnitudes land in the regular buckets.  Quantiles
    come from the cumulative bucket counts and are reported as the
    geometric midpoint of the owning bucket, so the estimate is within
    one bucket's relative error (:data:`GROWTH`) of the exact empirical
    quantile — without storing a single sample.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (_N_BUCKETS + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        self.counts[bisect_left(_BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: LatencyHistogram) -> None:
        """Fold ``other`` in; equivalent to recording the union of samples."""
        counts = self.counts
        for i, c in enumerate(other.counts):
            counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Matches the rank convention of ``numpy.percentile(...,
        method="inverted_cdf")``: the returned estimate lies in the
        bucket holding the sample of rank ``ceil(q * count)``, reported
        as that bucket's geometric midpoint (clamped to the observed
        min/max for the open-ended under/overflow buckets).
        """
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for k, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= rank:
                if k == 0:
                    return self.min
                if k == _N_BUCKETS + 1:
                    return self.max
                return math.sqrt(_BOUNDS[k - 1] * _BOUNDS[k])
        return self.max  # pragma: no cover - unreachable (counts sum = count)

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of the observations (``nan`` when empty)."""
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict[str, float]:
        """Summary stats for snapshots (p50/p95/p99 + exact count/mean)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------


class _Span:
    """A lightweight timing context; aggregates into a histogram on exit."""

    __slots__ = ("_telemetry", "name", "labels", "_started")

    def __init__(self, telemetry: Telemetry, name: str, labels: dict[str, Any]) -> None:
        self._telemetry = telemetry
        self.name = name
        self.labels = labels

    def __enter__(self) -> _Span:
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._telemetry._end_span(
            self.name, self.labels, self._started, time.perf_counter()
        )


class _NullSpan:
    """The shared do-nothing span (telemetry off)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# telemetry registries
# ----------------------------------------------------------------------


class Telemetry:
    """A process-local registry of counters, gauges and histograms.

    Thread-safe: the shard executor's workers record spans concurrently
    with the caller thread, so all mutation happens under one lock (the
    lock only exists on *enabled* telemetry — the disabled path never
    reaches it).

    Args:
        trace_path: Optional JSONL file receiving one Chrome
            trace-event line per span (``ph: "X"``) and instant event
            (``ph: "i"``).  ``None`` keeps spans aggregate-only.
    """

    enabled = True

    def __init__(self, *, trace_path: str | os.PathLike | None = None) -> None:
        self._lock = threading.Lock()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, LatencyHistogram] = {}
        self._trace_path = None if trace_path is None else str(trace_path)
        self._trace_file: TextIO | None = None
        if self._trace_path is not None:
            self._trace_file = open(self._trace_path, "w", encoding="utf-8")
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Increment counter ``name`` by ``value``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = LatencyHistogram()
            histogram.record(value)

    def span(self, name: str, **labels: Any) -> _Span:
        """A timing context: duration lands in histogram ``name`` (ms).

        With a trace sink configured, every span additionally emits one
        complete trace event carrying ``labels`` as its ``args``.
        """
        return _Span(self, name, labels)

    def event(self, name: str, **args: Any) -> None:
        """Emit an instant trace event (no-op without a trace sink)."""
        if self._trace_file is not None:
            self._write_trace(
                {
                    "name": name,
                    "ph": "i",
                    "ts": round((time.perf_counter() - self._epoch) * 1e6, 1),
                    "pid": 0,
                    "tid": threading.get_ident(),
                    "s": "p",
                    "args": args,
                }
            )

    def _end_span(
        self, name: str, labels: dict[str, Any], started: float, ended: float
    ) -> None:
        self.observe(name, (ended - started) * 1000.0)
        if self._trace_file is not None:
            self._write_trace(
                {
                    "name": name,
                    "ph": "X",
                    "ts": round((started - self._epoch) * 1e6, 1),
                    "dur": round((ended - started) * 1e6, 1),
                    "pid": 0,
                    "tid": threading.get_ident(),
                    "args": labels,
                }
            )

    def _write_trace(self, event: dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._trace_file is not None:
                self._trace_file.write(line + "\n")

    # -- reading / lifecycle -------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """All registries as one JSON-serializable dict.

        Shape: ``{"counters": {...}, "gauges": {...}, "histograms":
        {name: {count, mean, p50, p95, p99, min, max}}}`` — histogram
        values are milliseconds for span-fed entries.  ``nan`` summary
        fields are dropped so the payload is strict-JSON safe.
        """
        with self._lock:
            histograms = {
                name: {
                    key: value
                    for key, value in histogram.to_dict().items()
                    if not (isinstance(value, float) and math.isnan(value))
                }
                for name, histogram in sorted(self.histograms.items())
            }
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": histograms,
            }

    def write_snapshot(self, path: str | os.PathLike) -> None:
        """Write :meth:`snapshot` as pretty JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def close(self) -> None:
        """Flush and close the trace sink (idempotent)."""
        with self._lock:
            if self._trace_file is not None:
                self._trace_file.close()
                self._trace_file = None

    def __enter__(self) -> Telemetry:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Telemetry(counters={len(self.counters)}, "
            f"histograms={len(self.histograms)}, trace={self._trace_path!r})"
        )


class NullTelemetry:
    """The shared disabled telemetry: every operation is a no-op.

    Instrumented code checks ``telemetry.enabled`` before doing any
    timing work, so with this active the per-point cost is one
    attribute load and branch.
    """

    enabled = False
    __slots__ = ()

    def count(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str, **labels: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **args: Any) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTelemetry()"


NULL = NullTelemetry()
"""The process-wide disabled singleton (the default active telemetry)."""


# ----------------------------------------------------------------------
# the active instance
# ----------------------------------------------------------------------


def telemetry_from_env() -> Telemetry | None:
    """Build a :class:`Telemetry` from ``REPRO_TELEMETRY`` (else ``None``).

    ``REPRO_TELEMETRY`` set to anything but ``""``/``"0"`` enables it;
    ``REPRO_TELEMETRY_OUT`` optionally names the JSONL trace sink.
    """
    if os.environ.get("REPRO_TELEMETRY", "") in ("", "0"):
        return None
    return Telemetry(trace_path=os.environ.get("REPRO_TELEMETRY_OUT") or None)


_active: Telemetry | NullTelemetry = telemetry_from_env() or NULL


def get() -> Telemetry | NullTelemetry:
    """The active telemetry.  Instrumented components capture this at
    construction time, so activate telemetry *before* building the
    objects you want instrumented."""
    return _active


def set_active(telemetry: Telemetry | NullTelemetry) -> Telemetry | NullTelemetry:
    """Swap the active telemetry; returns the previous one."""
    global _active
    previous = _active
    _active = telemetry
    return previous


class activated:
    """Context manager: activate ``telemetry`` for the enclosed block.

    Restores the previously active instance on exit (it does **not**
    close the activated telemetry — callers that want the snapshot
    afterwards read it, then :meth:`Telemetry.close` it themselves).
    """

    def __init__(self, telemetry: Telemetry | NullTelemetry) -> None:
        self._telemetry = telemetry
        self._previous: Telemetry | NullTelemetry | None = None

    def __enter__(self) -> Telemetry | NullTelemetry:
        self._previous = set_active(self._telemetry)
        return self._telemetry

    def __exit__(self, *exc_info: Any) -> None:
        assert self._previous is not None
        set_active(self._previous)
