"""Resources and resource sets (the paper's ``R = {r_1, ..., r_n}``).

A :class:`Resource` couples an identifier with its post sequence and
optional descriptive metadata (a human-readable title and a category path
into the topic hierarchy, used by the Fig 7 / Table VI ground truth).
:class:`ResourceSet` is an ordered collection with O(1) id lookup — order
matters because every allocation vector ``x`` and count vector ``c`` in
the library is positional.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.errors import DataModelError
from repro.core.posts import PostSequence

__all__ = ["Resource", "ResourceSet"]


@dataclass(slots=True)
class Resource:
    """One taggable resource (a URL, photo, song, ...).

    Attributes:
        resource_id: Unique identifier within a :class:`ResourceSet`.
        sequence: The resource's post sequence.
        title: Optional display name (the case-study tables print these).
        category: Optional category path in a topic hierarchy, root
            first, e.g. ``("science", "physics", "classical")``.  This is
            ground-truth metadata for evaluation only — no strategy ever
            reads it.
    """

    resource_id: str
    sequence: PostSequence = field(default_factory=PostSequence)
    title: str | None = None
    category: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.resource_id:
            raise DataModelError("resource_id must be a non-empty string")
        if self.category is not None and not isinstance(self.category, tuple):
            self.category = tuple(self.category)

    @property
    def num_posts(self) -> int:
        """Length of the post sequence."""
        return len(self.sequence)

    @property
    def display_name(self) -> str:
        """Title if set, else the id."""
        return self.title if self.title is not None else self.resource_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.resource_id!r}, posts={len(self.sequence)})"


class ResourceSet:
    """An ordered set of resources with positional and id-based access.

    The positional index of a resource here is the index used in every
    ``c`` / ``x`` vector across the allocation machinery, so the order is
    part of the contract: iteration, indexing, and vectors all agree.

    Args:
        resources: Initial resources, kept in the given order.

    Raises:
        DataModelError: On duplicate resource ids.
    """

    def __init__(self, resources: Iterable[Resource] = ()) -> None:
        self._resources: list[Resource] = []
        self._index: dict[str, int] = {}
        for resource in resources:
            self.add(resource)

    def add(self, resource: Resource) -> int:
        """Append a resource; return its positional index.

        Raises:
            DataModelError: If the id is already present.
        """
        if resource.resource_id in self._index:
            raise DataModelError(f"duplicate resource id: {resource.resource_id!r}")
        self._index[resource.resource_id] = len(self._resources)
        self._resources.append(resource)
        return self._index[resource.resource_id]

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._resources)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources)

    def __getitem__(self, index: int) -> Resource:
        return self._resources[index]

    def __contains__(self, resource_id: object) -> bool:
        return resource_id in self._index

    def by_id(self, resource_id: str) -> Resource:
        """Look a resource up by id.

        Raises:
            KeyError: If absent.
        """
        return self._resources[self._index[resource_id]]

    def index_of(self, resource_id: str) -> int:
        """Positional index of ``resource_id``.

        Raises:
            KeyError: If absent.
        """
        return self._index[resource_id]

    @property
    def ids(self) -> tuple[str, ...]:
        """All resource ids in positional order."""
        return tuple(r.resource_id for r in self._resources)

    # ------------------------------------------------------------------
    # derived collections
    # ------------------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> ResourceSet:
        """A new set holding the resources at ``indices``, in that order.

        Resources are shared, not copied — subsets are views for
        experiments like Fig 6(e)'s "effect of number of resources".
        """
        return ResourceSet(self._resources[i] for i in indices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceSet(n={len(self._resources)})"
