"""Core data model and metrics of the paper (Section III).

Everything downstream — the allocation strategies, the synthetic corpus
generator, and the experiment harnesses — is built from the primitives in
this package:

* :mod:`repro.core.posts` — posts and post sequences (Definitions 1–2),
* :mod:`repro.core.frequency` — tag frequencies and rfds (Definitions 3–5),
* :mod:`repro.core.similarity` — cosine (Eq. 16) and ablation metrics,
* :mod:`repro.core.stability` — MA scores and practically-stable rfds
  (Definitions 7–8),
* :mod:`repro.core.quality` — tagging quality (Definitions 9–10),
* :mod:`repro.core.resources` / :mod:`repro.core.dataset` — resource sets,
  corpora, splits and persistence.
"""

from repro.core.dataset import DatasetSplit, TaggingDataset
from repro.core.errors import (
    AllocationError,
    BudgetError,
    DataModelError,
    ExhaustedError,
    NotStableError,
    ReproError,
    SpecError,
    StabilityError,
)
from repro.core.frequency import TagFrequencyTable
from repro.core.posts import Post, PostSequence
from repro.core.quality import QualityProfile, set_quality, tagging_quality
from repro.core.resources import Resource, ResourceSet
from repro.core.similarity import SIMILARITY_METRICS, cosine, dice, jaccard, jensen_shannon
from repro.core.stability import (
    DEFAULT_OMEGA,
    DEFAULT_TAU,
    PREPARATION_OMEGA,
    PREPARATION_TAU,
    StabilityTracker,
    adjacent_similarity_series,
    find_stable_point,
    ma_score_direct,
    ma_series,
    practically_stable_rfd,
)
from repro.core.tags import TagVocabulary, normalize_tag

__all__ = [
    "AllocationError",
    "BudgetError",
    "DataModelError",
    "DatasetSplit",
    "DEFAULT_OMEGA",
    "DEFAULT_TAU",
    "ExhaustedError",
    "NotStableError",
    "Post",
    "PostSequence",
    "PREPARATION_OMEGA",
    "PREPARATION_TAU",
    "QualityProfile",
    "ReproError",
    "SpecError",
    "Resource",
    "ResourceSet",
    "SIMILARITY_METRICS",
    "StabilityError",
    "StabilityTracker",
    "TagFrequencyTable",
    "TagVocabulary",
    "TaggingDataset",
    "adjacent_similarity_series",
    "cosine",
    "dice",
    "find_stable_point",
    "jaccard",
    "jensen_shannon",
    "ma_score_direct",
    "ma_series",
    "normalize_tag",
    "practically_stable_rfd",
    "set_quality",
    "tagging_quality",
]
