"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single base class.  Sub-classes distinguish the three
broad failure modes of the paper's machinery:

* malformed inputs (:class:`DataModelError`),
* stability computations that cannot succeed on the given post sequence
  (:class:`StabilityError` and its child :class:`NotStableError`),
* ill-posed allocation problems (:class:`AllocationError`,
  :class:`BudgetError`, :class:`ExhaustedError`),
* invalid or unserializable run specifications (:class:`SpecError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataModelError",
    "StabilityError",
    "NotStableError",
    "AllocationError",
    "BudgetError",
    "ExhaustedError",
    "SpecError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DataModelError(ReproError):
    """A post, resource, or dataset violates the data model of Section III-A.

    Examples: an empty post (Definition 1 requires a *nonempty* set of
    tags), posts whose timestamps are not monotonically non-decreasing
    within a sequence, or duplicate resource identifiers in a dataset.
    """


class StabilityError(ReproError):
    """A stability computation received invalid parameters.

    Raised for window sizes ``omega < 2`` (Definition 7 requires
    ``omega >= 2``) or thresholds outside the cosine range ``[0, 1]``.
    """


class NotStableError(StabilityError):
    """A post sequence never reaches a practically-stable rfd.

    Definition 8 requires the smallest ``k`` with ``m_i(k, omega) > tau``;
    if no prefix of the available posts satisfies the condition, the
    practically-stable rfd is undefined and this error is raised.

    Attributes:
        resource_id: Identifier of the offending resource, if known.
        best_score: The highest MA score observed, useful for diagnosing
            how far from stability the sequence is (``None`` when the
            sequence is shorter than the window).
    """

    def __init__(
        self,
        message: str,
        *,
        resource_id: str | None = None,
        best_score: float | None = None,
    ) -> None:
        super().__init__(message)
        self.resource_id = resource_id
        self.best_score = best_score


class AllocationError(ReproError):
    """An incentive allocation problem is ill-posed or a strategy misused."""


class BudgetError(AllocationError):
    """The requested budget is negative or cannot be honoured.

    The replay oracle has finitely many future posts; asking the runner
    (or DP) for more post tasks than the oracle can ever serve raises
    this error rather than silently under-delivering.
    """


class ExhaustedError(AllocationError):
    """Every resource ran out of future posts before the budget was spent."""


class SpecError(ReproError):
    """A declarative run spec (:mod:`repro.api`) is invalid.

    Raised for unknown spec fields, out-of-range values, unknown strategy
    or corpus names, and undeclared strategy parameters — anywhere the
    old ad-hoc entry points would have guessed, crashed later, or
    silently misbehaved.
    """
