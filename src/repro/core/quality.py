"""Tagging quality (Definitions 9–10) and precomputed quality profiles.

The tagging quality of a resource after ``k`` posts is the cosine
similarity between its rfd and its practically-stable rfd:

    ``q_i(k) = s(F_i(k), φ̂_i)``

and the quality of a set of resources is the mean of the members'
qualities.  Both are cheap one-off computations; the interesting piece is
:class:`QualityProfile`, which precomputes ``q_i(k)`` for *every* prefix
length of a known post sequence in one ``O(total tags)`` pass.  Profiles
power the DP algorithm (which needs the full gain table
``q_i(c_i + x)`` for ``x = 0..B``) and the experiment evaluator (which
scores allocation traces at many budget checkpoints).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.errors import DataModelError
from repro.core.posts import Post, PostSequence
from repro.core.similarity import cosine

__all__ = ["tagging_quality", "set_quality", "QualityProfile"]


def tagging_quality(rfd: Mapping[str, float], stable_rfd: Mapping[str, float]) -> float:
    """``q_i(k) = s(F_i(k), φ̂_i)`` (Definition 9).

    Args:
        rfd: The resource's current rfd (or raw counts — cosine is
            scale-invariant).
        stable_rfd: The practically-stable rfd ``φ̂_i``.

    Returns:
        Quality in ``[0, 1]``; 0 when the resource has no posts.
    """
    return cosine(rfd, stable_rfd)


def set_quality(qualities: Sequence[float]) -> float:
    """``q(R, k)`` — the mean member quality (Definition 10).

    Raises:
        DataModelError: For an empty resource set, where the average is
            undefined.
    """
    if len(qualities) == 0:
        raise DataModelError("set quality undefined for an empty resource set")
    return float(sum(qualities)) / len(qualities)


class QualityProfile:
    """``q_i(k)`` for every prefix ``k = 0..K`` of a known post sequence.

    The evaluator and the DP algorithm both need quality as a function of
    the prefix length.  A profile walks the sequence once, maintaining

    * the per-tag counts restricted to tags of ``φ̂`` (for the dot
      product with the stable rfd),
    * the squared norm of the *full* count vector (tags outside ``φ̂``
      still contribute to the denominator),

    so each post costs ``O(|post|)`` and

        ``q(k) = dot(h_k, φ̂) / (‖h_k‖ · ‖φ̂‖)``.

    Attributes:
        qualities: ``float64`` array of length ``K + 1``; entry ``k`` is
            ``q_i(k)``.  ``qualities[0] == 0`` (Eq. 16, zero vector).
        stable_rfd: The reference distribution the profile was built
            against.
    """

    __slots__ = ("qualities", "stable_rfd")

    def __init__(
        self,
        posts: Sequence[Post] | PostSequence,
        stable_rfd: Mapping[str, float],
    ) -> None:
        if not stable_rfd:
            raise DataModelError("stable rfd must be a non-empty distribution")
        self.stable_rfd = dict(stable_rfd)

        ref_norm = math.sqrt(sum(w * w for w in self.stable_rfd.values()))
        if ref_norm == 0.0:
            raise DataModelError("stable rfd has zero norm")

        counts: dict[str, int] = {}
        dot = 0.0  # dot(h_k, stable_rfd)
        sumsq = 0  # ‖h_k‖²
        values = np.zeros(len(posts) + 1, dtype=np.float64)
        for k, post in enumerate(posts, start=1):
            for tag in post.tags:
                previous = counts.get(tag, 0)
                counts[tag] = previous + 1
                sumsq += 2 * previous + 1
                weight = self.stable_rfd.get(tag)
                if weight is not None:
                    dot += weight
            values[k] = min(dot / (math.sqrt(sumsq) * ref_norm), 1.0)
        self.qualities = values

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of posts the profile covers (``K``)."""
        return len(self.qualities) - 1

    def quality(self, k: int) -> float:
        """``q_i(k)``.

        Raises:
            IndexError: If ``k`` is outside ``[0, K]`` — the profile only
                knows the posts it was built from.
        """
        if k < 0 or k >= len(self.qualities):
            raise IndexError(f"k={k} outside [0, {len(self.qualities) - 1}]")
        return float(self.qualities[k])

    def gain_array(self, c: int, max_tasks: int) -> np.ndarray:
        """``[q(c), q(c+1), ..., q(c + x_max)]`` for the DP gain table.

        ``x_max`` is ``min(max_tasks, K - c)``: a replayed resource cannot
        receive more tasks than it has future posts.  The caller (DP)
        reads the array length to learn the per-resource cap.

        Args:
            c: Initial post count ``c_i``.
            max_tasks: Budget-side cap on ``x_i`` (usually ``B``).

        Returns:
            A read-only view ``qualities[c : c + x_max + 1]``.

        Raises:
            DataModelError: If ``c`` exceeds the profile length (the
                initial state would already be out of replay range).
        """
        if c < 0 or c > len(self):
            raise DataModelError(f"initial count c={c} outside profile range [0, {len(self)}]")
        x_max = min(max_tasks, len(self) - c)
        view = self.qualities[c : c + x_max + 1]
        view.flags.writeable = False
        return view

    def verify_against(self, posts: Sequence[Post] | PostSequence, k: int) -> float:
        """Recompute ``q_i(k)`` from scratch (test oracle).

        Builds ``F_i(k)`` directly and applies Definition 9, bypassing
        the incremental machinery.
        """
        from repro.core.frequency import TagFrequencyTable

        table = TagFrequencyTable.from_posts(posts[:k])
        return cosine(table.rfd(), self.stable_rfd)
