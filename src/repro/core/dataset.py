"""Tagging datasets: a resource set plus corpus-level operations.

:class:`TaggingDataset` is the top-level container the experiments run
on.  It owns a :class:`~repro.core.resources.ResourceSet` and provides

* the **time-cutoff split** of Section V-A (posts up to the cutoff are
  the initial state ``c``; later posts replay as completed post tasks),
* corpus statistics (posts-per-resource distribution — Fig 1(b)),
* JSONL persistence so generated corpora can be cached and shared, and
* subset/sample operations for the Fig 6(e) dataset-size sweep.

:class:`DatasetSplit` is the immutable result of a split and the input
every allocation run consumes: initial counts, future posts per resource,
and the *global future order* (all future posts merged by timestamp) that
drives the Free Choice baseline.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.errors import DataModelError
from repro.core.posts import Post, PostSequence
from repro.core.resources import Resource, ResourceSet

__all__ = ["TaggingDataset", "DatasetSplit"]


@dataclass(frozen=True)
class DatasetSplit:
    """A dataset frozen at a cutoff time (the experiment's information wall).

    Attributes:
        resources: The underlying resource set (shared, not copied).
        initial_counts: ``c`` — posts per resource at the cutoff
            (``int64`` array, positional).
        future: Per-resource lists of posts after the cutoff, in time
            order; a strategy's ``j``-th task on resource ``i`` reveals
            ``future[i][j]``.
        free_choice_order: Indices of resources in the order their future
            posts actually arrived (all future posts merged by
            timestamp).  This is what "taggers freely choose" looks like
            in replay: the FC baseline consumes this stream.
    """

    resources: ResourceSet
    initial_counts: np.ndarray
    future: tuple[tuple[Post, ...], ...]
    free_choice_order: tuple[int, ...]

    @property
    def n(self) -> int:
        """Number of resources."""
        return len(self.resources)

    @property
    def total_future_posts(self) -> int:
        """Upper bound on any spendable budget under replay."""
        return sum(len(posts) for posts in self.future)

    def initial_posts(self, index: int) -> Sequence[Post]:
        """The initial (pre-cutoff) posts of resource ``index``."""
        count = int(self.initial_counts[index])
        return self.resources[index].sequence.prefix(count)

    def subset(self, indices: Sequence[int]) -> DatasetSplit:
        """Restrict the split to ``indices`` (Fig 6(e) subsets).

        The free-choice order is filtered to the kept resources and
        re-indexed to the new positions.
        """
        index_map = {old: new for new, old in enumerate(indices)}
        return DatasetSplit(
            resources=self.resources.subset(indices),
            initial_counts=self.initial_counts[list(indices)].copy(),
            future=tuple(self.future[i] for i in indices),
            free_choice_order=tuple(
                index_map[i] for i in self.free_choice_order if i in index_map
            ),
        )


class TaggingDataset:
    """A named corpus of tagged resources.

    Args:
        resources: The corpus members.
        name: Human-readable label used in reports.
    """

    def __init__(self, resources: ResourceSet, name: str = "dataset") -> None:
        self.resources = resources
        self.name = name

    # ------------------------------------------------------------------
    # basic stats
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.resources)

    @property
    def total_posts(self) -> int:
        """Total posts across all resources."""
        return sum(len(r.sequence) for r in self.resources)

    def posts_per_resource(self) -> np.ndarray:
        """Post counts per resource (positional ``int64`` array)."""
        return np.array([len(r.sequence) for r in self.resources], dtype=np.int64)

    def posts_distribution(self) -> dict[int, int]:
        """Histogram: post count -> number of resources (Fig 1(b) data)."""
        histogram: dict[int, int] = {}
        for resource in self.resources:
            count = len(resource.sequence)
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def distinct_tags(self) -> set[str]:
        """The corpus tag universe ``T`` (as observed)."""
        tags: set[str] = set()
        for resource in self.resources:
            tags.update(resource.sequence.distinct_tags())
        return tags

    # ------------------------------------------------------------------
    # the experimental split
    # ------------------------------------------------------------------

    def split(self, cutoff: float) -> DatasetSplit:
        """Freeze the corpus at ``cutoff`` (Section V-A's setup).

        Posts with ``timestamp <= cutoff`` become the initial state;
        later posts become the replayable future, and their global
        timestamp order becomes the free-choice stream.
        """
        initial_counts = np.zeros(len(self.resources), dtype=np.int64)
        future: list[tuple[Post, ...]] = []
        arrival: list[tuple[float, int, int]] = []  # (timestamp, tiebreak, resource index)
        for index, resource in enumerate(self.resources):
            count = resource.sequence.count_before(cutoff)
            initial_counts[index] = count
            later = tuple(resource.sequence.suffix(count))
            future.append(later)
            for offset, post in enumerate(later):
                arrival.append((post.timestamp, offset, index))
        arrival.sort()
        return DatasetSplit(
            resources=self.resources,
            initial_counts=initial_counts,
            future=tuple(future),
            free_choice_order=tuple(index for _, _, index in arrival),
        )

    # ------------------------------------------------------------------
    # derived datasets
    # ------------------------------------------------------------------

    def subset(self, indices: Sequence[int], name: str | None = None) -> TaggingDataset:
        """A dataset over the resources at ``indices``."""
        return TaggingDataset(
            self.resources.subset(indices),
            name=name or f"{self.name}[{len(indices)}]",
        )

    def sample(self, n: int, rng: np.random.Generator) -> TaggingDataset:
        """A uniform random sample of ``n`` resources (Fig 6(e) sweeps).

        Raises:
            DataModelError: If ``n`` exceeds the corpus size.
        """
        if n > len(self.resources):
            raise DataModelError(f"cannot sample {n} from {len(self.resources)} resources")
        indices = rng.choice(len(self.resources), size=n, replace=False)
        return self.subset(sorted(int(i) for i in indices), name=f"{self.name}-sample{n}")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> None:
        """Write one JSON object per resource.

        The format is stable and self-contained::

            {"id": ..., "title": ..., "category": [...],
             "posts": [{"t": timestamp, "tags": [...]}, ...]}
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for resource in self.resources:
                record = {
                    "id": resource.resource_id,
                    "title": resource.title,
                    "category": list(resource.category) if resource.category else None,
                    "posts": [
                        {"t": post.timestamp, "tags": sorted(post.tags)}
                        for post in resource.sequence
                    ],
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def from_jsonl(cls, path: str | Path, name: str | None = None) -> TaggingDataset:
        """Load a dataset previously written by :meth:`to_jsonl`.

        Raises:
            DataModelError: On malformed records.
        """
        path = Path(path)
        resources = ResourceSet()
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    sequence = PostSequence(
                        Post(frozenset(entry["tags"]), timestamp=float(entry["t"]))
                        for entry in record["posts"]
                    )
                    category = record.get("category")
                    resources.add(
                        Resource(
                            resource_id=record["id"],
                            sequence=sequence,
                            title=record.get("title"),
                            category=tuple(category) if category else None,
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise DataModelError(f"{path}:{line_number}: malformed record: {exc}") from exc
        return cls(resources, name=name or path.stem)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaggingDataset({self.name!r}, n={len(self.resources)}, posts={self.total_posts})"
