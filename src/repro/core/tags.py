"""Tag vocabulary utilities (the set ``T`` of Section III-A).

The paper models tags as opaque strings drawn from a universe ``T``.  Most
of the library treats tags as plain ``str`` values and represents sparse
tag vectors as ``dict[str, float]``; this module adds a small
:class:`TagVocabulary` helper used where a *dense, ordered* view of the
universe is convenient (the DP experiments, NumPy round-trips, and the
paper's running example whose tables enumerate ``T`` explicitly).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from repro.core.errors import DataModelError

__all__ = ["TagVocabulary", "normalize_tag"]


def normalize_tag(tag: str) -> str:
    """Normalise a raw tag string.

    del.icio.us tags are case-insensitive single tokens; we lowercase and
    strip surrounding whitespace.  Interior whitespace is rejected because
    a post is a *set* of single tags (Definition 1) — a string with spaces
    is almost always several tags that failed to be split upstream.

    Args:
        tag: Raw tag text.

    Returns:
        The normalised tag.

    Raises:
        DataModelError: If the tag is empty after stripping or contains
            interior whitespace.
    """
    cleaned = tag.strip().lower()
    if not cleaned:
        raise DataModelError("tag must be a non-empty string")
    if any(ch.isspace() for ch in cleaned):
        raise DataModelError(f"tag may not contain whitespace: {tag!r}")
    return cleaned


class TagVocabulary:
    """An ordered, indexable universe of tags.

    The vocabulary assigns each tag a stable integer index, enabling
    conversion between the library's sparse ``dict[str, float]`` vectors
    and dense NumPy arrays.  Iteration order is insertion order, which
    makes dense vectors reproducible.

    Args:
        tags: Initial tags, added in order.  Duplicates are rejected so a
            vocabulary built from an explicit list (e.g. the paper's
            ``T = {google, earth, geographic, pictures}``) is exactly what
            the caller wrote down.
    """

    def __init__(self, tags: Iterable[str] = ()) -> None:
        self._index: dict[str, int] = {}
        for tag in tags:
            self.add(tag)

    def add(self, tag: str) -> int:
        """Add ``tag`` to the vocabulary and return its index.

        Raises:
            DataModelError: If the tag is already present.
        """
        tag = normalize_tag(tag)
        if tag in self._index:
            raise DataModelError(f"duplicate tag in vocabulary: {tag!r}")
        self._index[tag] = len(self._index)
        return self._index[tag]

    def add_all(self, tags: Iterable[str]) -> None:
        """Add every tag from ``tags``, skipping ones already present."""
        for tag in tags:
            tag = normalize_tag(tag)
            if tag not in self._index:
                self._index[tag] = len(self._index)

    def index_of(self, tag: str) -> int:
        """Return the index of ``tag``.

        Raises:
            KeyError: If the tag is not in the vocabulary.
        """
        return self._index[normalize_tag(tag)]

    def __contains__(self, tag: object) -> bool:
        return isinstance(tag, str) and tag.strip().lower() in self._index

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagVocabulary({list(self._index)!r})"

    @property
    def tags(self) -> tuple[str, ...]:
        """All tags in index order."""
        return tuple(self._index)

    def to_dense(self, vector: Mapping[str, float]) -> np.ndarray:
        """Convert a sparse tag vector to a dense array over this vocabulary.

        Tags absent from the vocabulary are rejected rather than silently
        dropped: losing mass would corrupt similarity scores downstream.

        Args:
            vector: Sparse mapping from tag to weight.

        Returns:
            A ``float64`` array of length ``len(self)``.

        Raises:
            DataModelError: If ``vector`` mentions an unknown tag.
        """
        dense = np.zeros(len(self._index), dtype=np.float64)
        for tag, weight in vector.items():
            index = self._index.get(normalize_tag(tag))
            if index is None:
                raise DataModelError(f"tag not in vocabulary: {tag!r}")
            dense[index] = weight
        return dense

    def to_sparse(self, dense: np.ndarray) -> dict[str, float]:
        """Convert a dense array over this vocabulary to a sparse dict.

        Zero entries are omitted, matching the library's sparse-vector
        convention (absent tag == zero weight).

        Raises:
            DataModelError: If the array length does not match the
                vocabulary size.
        """
        if len(dense) != len(self._index):
            raise DataModelError(
                f"dense vector has length {len(dense)}, expected {len(self._index)}"
            )
        return {tag: float(dense[i]) for tag, i in self._index.items() if dense[i] != 0.0}
