"""Tagging stability: MA scores and practically-stable rfds (Definitions 7–8).

Given a window ``omega >= 2``, the MA score of a resource after ``k >= omega``
posts is the mean of the last ``omega - 1`` *adjacent similarities*

    ``m_i(k, omega) = (1 / (omega-1)) Σ_{j=k-omega+2}^{k} s(F_i(j-1), F_i(j))``

and the practically-stable rfd ``φ̂_i(omega, tau)`` is the rfd at the
smallest ``k`` whose MA score exceeds ``tau`` (that ``k`` is the resource's
*stable point*).

Two implementations are provided:

* :class:`StabilityTracker` — the production path.  It uses the Appendix C
  recurrence: keep the last ``omega - 1`` adjacent similarities in a queue
  and a running sum, so each post costs ``O(|post|)`` (for the incremental
  adjacent similarity, see :mod:`repro.core.frequency`) plus ``O(1)`` for
  the MA update.
* :func:`ma_score_direct` — a deliberately naive recomputation from rfd
  snapshots, kept as the correctness oracle for tests and for the
  incremental-vs-direct ablation benchmark.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence

from repro.core.errors import NotStableError, StabilityError
from repro.core.frequency import TagFrequencyTable
from repro.core.posts import Post, PostSequence
from repro.core.similarity import cosine

__all__ = [
    "StabilityTracker",
    "adjacent_similarity_series",
    "ma_series",
    "ma_score_direct",
    "find_stable_point",
    "practically_stable_rfd",
]

DEFAULT_OMEGA = 5
"""Default MA window — the paper's default for MU / FP-MU (Section V-A)."""

DEFAULT_TAU = 0.99
"""Default stability threshold used in Figure 3's illustration."""

PREPARATION_OMEGA = 20
PREPARATION_TAU = 0.9999
"""The stringent (ω_s, τ_s) the paper uses to *prepare* its dataset:
resources qualify for the evaluation only if their full post sequence
reaches an MA score above τ_s with window ω_s (Section V-A)."""


def _validate_omega(omega: int) -> None:
    if omega < 2:
        raise StabilityError(f"omega must be >= 2 (Definition 7), got {omega}")


def _validate_tau(tau: float) -> None:
    if not 0.0 <= tau <= 1.0:
        raise StabilityError(f"tau must lie in [0, 1] (cosine range), got {tau}")


class StabilityTracker:
    """Streaming MA-score tracker for one resource (Appendix C).

    Feed posts one at a time with :meth:`add_post`; query
    :attr:`ma_score` at any point.  The score is ``None`` until the
    resource has received at least ``omega`` posts (Definition 7 leaves
    it undefined there).

    The tracker also records the first post index at which the MA score
    exceeded a threshold ``tau`` (if one was given), so streaming
    consumers learn the stable point the moment it happens.

    Args:
        omega: MA window, ``>= 2``.
        tau: Optional stability threshold in ``[0, 1]``.  When set, the
            tracker watches for Definition 8's condition
            ``m(k, omega) > tau`` and snapshots the stable rfd.
    """

    __slots__ = ("omega", "tau", "_table", "_window", "_window_sum", "_stable_point", "_stable_rfd")

    def __init__(self, omega: int = DEFAULT_OMEGA, tau: float | None = None) -> None:
        _validate_omega(omega)
        if tau is not None:
            _validate_tau(tau)
        self.omega = omega
        self.tau = tau
        self._table = TagFrequencyTable()
        # Last (omega - 1) adjacent similarities; the j = 1 similarity is
        # never part of any window (the earliest window, k = omega, spans
        # j = 2 .. omega), so it is simply not enqueued.
        self._window: deque[float] = deque()
        self._window_sum = 0.0
        self._stable_point: int | None = None
        self._stable_rfd: dict[str, float] | None = None

    # ------------------------------------------------------------------

    def add_post(self, tags: Iterable[str]) -> float:
        """Ingest one post; return the adjacent similarity it induced."""
        similarity = self._table.add_post(tags)
        k = self._table.num_posts
        if k >= 2:
            self._window.append(similarity)
            self._window_sum += similarity
            if len(self._window) > self.omega - 1:
                self._window_sum -= self._window.popleft()
        if (
            self.tau is not None
            and self._stable_point is None
            and k >= self.omega
            and self.ma_score is not None
            and self.ma_score > self.tau
        ):
            self._stable_point = k
            self._stable_rfd = self._table.rfd()
        return similarity

    def add_posts(self, posts: Iterable[Post]) -> None:
        """Ingest a batch of posts."""
        for post in posts:
            self.add_post(post.tags)

    # ------------------------------------------------------------------

    @property
    def num_posts(self) -> int:
        """Posts ingested so far (the paper's ``k``)."""
        return self._table.num_posts

    @property
    def ma_score(self) -> float | None:
        """``m(k, omega)``, or ``None`` while ``k < omega``."""
        if self._table.num_posts < self.omega:
            return None
        # The window necessarily holds omega - 1 entries once k >= omega.
        return self._window_sum / (self.omega - 1)

    @property
    def similarity_window(self) -> tuple[float, ...]:
        """The adjacent similarities currently in the MA window.

        Oldest first; holds exactly ``omega - 1`` entries once
        ``k >= omega``.  The batched MU strategy uses this to bound how
        far the score can move over the next few posts (each new post
        shifts the MA by ``(s_new - s_oldest) / (omega - 1)``).
        """
        return tuple(self._window)

    @property
    def stable_point(self) -> int | None:
        """Smallest ``k`` seen with ``m(k, omega) > tau`` (needs ``tau``)."""
        return self._stable_point

    @property
    def stable_rfd(self) -> dict[str, float] | None:
        """The rfd snapshot at :attr:`stable_point`, if reached."""
        return None if self._stable_rfd is None else dict(self._stable_rfd)

    @property
    def is_stable(self) -> bool:
        """Whether Definition 8's condition has been met."""
        return self._stable_point is not None

    def rfd(self) -> dict[str, float]:
        """Current rfd ``F(k)``."""
        return self._table.rfd()

    def frequency_table(self) -> TagFrequencyTable:
        """The underlying (live) frequency table."""
        return self._table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        score = self.ma_score
        rendered = "undefined" if score is None else f"{score:.4f}"
        return f"StabilityTracker(k={self.num_posts}, omega={self.omega}, ma={rendered})"


# ----------------------------------------------------------------------
# batch utilities
# ----------------------------------------------------------------------


def adjacent_similarity_series(posts: Sequence[Post] | PostSequence) -> list[float]:
    """Adjacent similarity at every post: ``[s(F(j-1), F(j)) for j = 1..k]``.

    The first entry is always 0 (Eq. 16, zero-vector branch).
    """
    table = TagFrequencyTable()
    return [table.add_post(post.tags) for post in posts]


def ma_series(
    posts: Sequence[Post] | PostSequence, omega: int = DEFAULT_OMEGA
) -> list[tuple[int, float]]:
    """The MA score at every defined ``k``: pairs ``(k, m(k, omega))``.

    Returns an empty list when the sequence is shorter than ``omega``.
    """
    _validate_omega(omega)
    tracker = StabilityTracker(omega)
    series: list[tuple[int, float]] = []
    for post in posts:
        tracker.add_post(post.tags)
        score = tracker.ma_score
        if score is not None:
            series.append((tracker.num_posts, score))
    return series


def ma_score_direct(
    posts: Sequence[Post] | PostSequence, k: int, omega: int = DEFAULT_OMEGA
) -> float:
    """Definition 7 computed the slow, obvious way (test/ablation oracle).

    Materialises the rfds ``F(k-omega+1) .. F(k)`` and averages the
    ``omega - 1`` pairwise cosine similarities.

    Raises:
        StabilityError: If ``k < omega`` (the score is undefined) or the
            sequence has fewer than ``k`` posts.
    """
    _validate_omega(omega)
    if k < omega:
        raise StabilityError(f"MA score undefined for k={k} < omega={omega}")
    if len(posts) < k:
        raise StabilityError(f"sequence has {len(posts)} posts, need at least k={k}")

    table = TagFrequencyTable()
    snapshots: list[dict[str, float]] = []
    for j, post in enumerate(posts[:k], start=1):
        table.add_post(post.tags)
        if j >= k - omega + 1:
            snapshots.append(table.rfd())
    total = sum(cosine(a, b) for a, b in zip(snapshots, snapshots[1:]))
    return total / (omega - 1)


def find_stable_point(
    posts: Sequence[Post] | PostSequence,
    omega: int = DEFAULT_OMEGA,
    tau: float = DEFAULT_TAU,
) -> int | None:
    """The stable point: smallest ``k >= omega`` with ``m(k, omega) > tau``.

    Returns ``None`` when no prefix of ``posts`` satisfies the condition.
    """
    _validate_omega(omega)
    _validate_tau(tau)
    tracker = StabilityTracker(omega, tau)
    for post in posts:
        tracker.add_post(post.tags)
        if tracker.is_stable:
            return tracker.stable_point
    return None


def practically_stable_rfd(
    posts: Sequence[Post] | PostSequence,
    omega: int = DEFAULT_OMEGA,
    tau: float = DEFAULT_TAU,
    *,
    resource_id: str | None = None,
) -> tuple[int, dict[str, float]]:
    """The practically-stable rfd ``φ̂(omega, tau)`` (Definition 8).

    Args:
        posts: The resource's post sequence (or a long-enough prefix).
        omega: MA window.
        tau: Stability threshold.
        resource_id: Optional id used to enrich the error message.

    Returns:
        ``(stable_point, rfd_at_stable_point)``.

    Raises:
        NotStableError: If the sequence never satisfies Definition 8's
            condition — the practically-stable rfd is then undefined.
    """
    _validate_omega(omega)
    _validate_tau(tau)
    tracker = StabilityTracker(omega, tau)
    best: float | None = None
    for post in posts:
        tracker.add_post(post.tags)
        score = tracker.ma_score
        if score is not None:
            best = score if best is None else max(best, score)
        if tracker.is_stable:
            assert tracker.stable_point is not None and tracker.stable_rfd is not None
            return tracker.stable_point, tracker.stable_rfd
    raise NotStableError(
        f"post sequence of length {len(posts)} never reaches MA > {tau} with omega={omega}",
        resource_id=resource_id,
        best_score=best,
    )
