"""Similarity metrics over sparse tag vectors.

The paper uses cosine similarity (Appendix A, Eq. 16) both for the
adjacent-similarity inside the MA score and for the quality metric and the
resource–resource similarity case studies.  :func:`cosine` implements
Eq. 16 exactly, including its "otherwise" branch: if either vector is the
zero vector the similarity is defined to be 0.

The extra metrics (:func:`jaccard`, :func:`dice`,
:func:`jensen_shannon`) back the metric-choice ablation benchmark — the
paper fixes cosine but cites Markines et al. [16] on the fact that
different similarity measures have different distributional properties.

All functions accept sparse mappings ``tag -> weight`` with non-negative
weights; a missing key means weight 0.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

__all__ = ["cosine", "jaccard", "dice", "jensen_shannon", "SIMILARITY_METRICS"]

SparseVector = Mapping[str, float]


def _dot(u: SparseVector, v: SparseVector) -> float:
    """Dot product, iterating over the smaller vector."""
    if len(u) > len(v):
        u, v = v, u
    total = 0.0
    for tag, weight in u.items():
        other = v.get(tag)
        if other is not None:
            total += weight * other
    return total


def _norm(u: SparseVector) -> float:
    return math.sqrt(sum(w * w for w in u.values()))


def cosine(u: SparseVector, v: SparseVector) -> float:
    """Cosine similarity (Eq. 16).

    Returns 0 when either vector is empty / all-zero, matching the
    paper's convention that ``s`` with a ``k = 0`` rfd is 0.

    Args:
        u: Sparse tag vector.
        v: Sparse tag vector.

    Returns:
        Similarity in ``[0, 1]`` for non-negative inputs.
    """
    norm_u = _norm(u)
    norm_v = _norm(v)
    if norm_u == 0.0 or norm_v == 0.0:
        return 0.0
    return min(_dot(u, v) / (norm_u * norm_v), 1.0)


def jaccard(u: SparseVector, v: SparseVector) -> float:
    """Weighted Jaccard similarity ``Σ min / Σ max``.

    Degrades to set Jaccard on binary vectors.  Returns 0 when both
    vectors are empty (no evidence of similarity), consistent with
    :func:`cosine`.
    """
    keys = set(u) | set(v)
    if not keys:
        return 0.0
    numerator = 0.0
    denominator = 0.0
    for tag in keys:
        a = u.get(tag, 0.0)
        b = v.get(tag, 0.0)
        numerator += min(a, b)
        denominator += max(a, b)
    if denominator == 0.0:
        return 0.0
    # Clamp summation-order float drift (numerator and denominator are
    # accumulated in different orders).
    return min(numerator / denominator, 1.0)


def dice(u: SparseVector, v: SparseVector) -> float:
    """Weighted Dice coefficient ``2·Σ min / (Σu + Σv)``."""
    total = sum(u.values()) + sum(v.values())
    if total == 0.0:
        return 0.0
    overlap = sum(min(u.get(tag, 0.0), v.get(tag, 0.0)) for tag in set(u) | set(v))
    return min(2.0 * overlap / total, 1.0)


def _normalised(u: SparseVector) -> dict[str, float]:
    total = sum(u.values())
    if total <= 0.0:
        return {}
    return {tag: weight / total for tag, weight in u.items() if weight > 0.0}


def jensen_shannon(u: SparseVector, v: SparseVector) -> float:
    """Jensen–Shannon *similarity*: ``1 - JSD(P, Q) / ln 2``.

    Inputs are normalised to probability distributions first, so raw
    counts and rfds give the same answer.  The JS divergence is symmetric
    and bounded by ``ln 2``, hence the similarity lies in ``[0, 1]``.
    Returns 0 if either side has no mass.
    """
    p = _normalised(u)
    q = _normalised(v)
    if not p or not q:
        return 0.0
    divergence = 0.0
    for tag in set(p) | set(q):
        a = p.get(tag, 0.0)
        b = q.get(tag, 0.0)
        m = (a + b) / 2.0
        if a > 0.0:
            divergence += 0.5 * a * math.log(a / m)
        if b > 0.0:
            divergence += 0.5 * b * math.log(b / m)
    similarity = 1.0 - divergence / math.log(2.0)
    # Clamp tiny negative drift from floating point.
    return min(max(similarity, 0.0), 1.0)


SIMILARITY_METRICS = {
    "cosine": cosine,
    "jaccard": jaccard,
    "dice": dice,
    "jensen-shannon": jensen_shannon,
}
"""Registry used by the metric-choice ablation benchmark and the CLI."""
