"""Tag frequencies and relative tag frequency distributions (Definitions 3–5).

For a resource that has received ``k`` posts, the paper defines

* ``h_i(t, k)`` — the number of the first ``k`` posts containing tag ``t``
  (Definition 3),
* ``f_i(t, k) = h_i(t, k) / Σ_t' h_i(t', k)`` — the relative tag frequency
  (Definition 4), and
* the rfd ``F_i(k)`` — the vector of all relative frequencies
  (Definition 5).

:class:`TagFrequencyTable` maintains these quantities *incrementally*.  The
critical observation (used throughout the library, and the reason the MU
strategy is practical — Appendix C) is that **cosine similarity is
scale-invariant**: the rfd is the raw count vector divided by the total tag
count, so

    ``s(F_i(k-1), F_i(k)) = cos(h_i(·, k-1), h_i(·, k))``

and the adjacent similarity of Definition 7 can be maintained in
``O(|post|)`` time from three running aggregates: the per-tag counts, the
squared norm ``Σ_t h(t)²``, and the total ``Σ_t h(t)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.core.posts import Post, PostSequence

__all__ = ["TagFrequencyTable"]


class TagFrequencyTable:
    """Incremental tag-count statistics for one resource's post sequence.

    The table starts empty (``k = 0``, where the paper defines the rfd to
    be the zero vector) and grows one post at a time via :meth:`add_post`,
    which also returns the adjacent similarity
    ``s(F(k-1), F(k))`` introduced by that post.

    Example:
        >>> table = TagFrequencyTable()
        >>> table.add_post({"google", "earth"})
        0.0
        >>> round(table.relative_frequency("google"), 3)
        0.5
    """

    __slots__ = ("_counts", "_total", "_sumsq", "_num_posts")

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._total = 0  # Σ_t h(t, k): total tag assignments, duplicates counted across posts
        self._sumsq = 0  # Σ_t h(t, k)²: squared L2 norm of the count vector
        self._num_posts = 0

    @classmethod
    def from_posts(cls, posts: Iterable[Post] | PostSequence) -> TagFrequencyTable:
        """Build a table from existing posts (e.g. a sequence prefix)."""
        table = cls()
        for post in posts:
            table.add_post(post.tags)
        return table

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add_post(self, tags: Iterable[str]) -> float:
        """Record one post and return the adjacent similarity it induced.

        The returned value is ``s(F(k-1), F(k))`` where ``k`` is the count
        *after* this post.  For the first post the previous rfd is the
        zero vector and Eq. 16's "otherwise" branch applies, so the
        similarity is 0.

        Args:
            tags: The post's tags.  Normalisation is the caller's job
                (posts built via :meth:`Post.of` are already normalised);
                duplicates in the iterable are collapsed because a post
                is a set.

        Returns:
            The adjacent similarity at the new post, in ``[0, 1]``.
        """
        unique = set(tags)
        if not unique:
            # Mirrors Post's invariant; reached only by callers passing raw tag
            # iterables instead of Post objects.
            from repro.core.errors import DataModelError

            raise DataModelError("a post must contain at least one tag (Definition 1)")

        # dot(h_k, h_{k+1}) = Σ_t h_k(t)·(h_k(t) + [t in post]) = sumsq + Σ_{t in post} h_k(t)
        overlap = sum(self._counts.get(tag, 0) for tag in unique)
        dot = self._sumsq + overlap
        new_sumsq = self._sumsq + 2 * overlap + len(unique)

        if self._sumsq == 0:
            similarity = 0.0
        else:
            similarity = dot / math.sqrt(self._sumsq * new_sumsq)
            # Guard against floating-point drift just above 1.
            similarity = min(similarity, 1.0)

        for tag in unique:
            self._counts[tag] = self._counts.get(tag, 0) + 1
        self._total += len(unique)
        self._sumsq = new_sumsq
        self._num_posts += 1
        return similarity

    # ------------------------------------------------------------------
    # paper quantities
    # ------------------------------------------------------------------

    @property
    def num_posts(self) -> int:
        """The number of posts recorded — the paper's ``k``."""
        return self._num_posts

    @property
    def total_tag_assignments(self) -> int:
        """``Σ_t h(t, k)`` — the rfd's normalising constant."""
        return self._total

    @property
    def norm(self) -> float:
        """L2 norm of the count vector, ``sqrt(Σ_t h(t)²)``."""
        return math.sqrt(self._sumsq)

    def frequency(self, tag: str) -> int:
        """``h_i(t, k)`` — posts among the first ``k`` containing ``tag``."""
        return self._counts.get(tag, 0)

    def relative_frequency(self, tag: str) -> float:
        """``f_i(t, k)`` — Definition 4 (0 when no posts yet)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(tag, 0) / self._total

    def rfd(self) -> dict[str, float]:
        """The rfd ``F_i(k)`` as a sparse vector (Definition 5).

        Tags with zero frequency are omitted; ``k = 0`` yields the empty
        dict, the sparse encoding of the zero vector.
        """
        if self._total == 0:
            return {}
        total = self._total
        return {tag: count / total for tag, count in self._counts.items()}

    def counts(self) -> dict[str, int]:
        """A copy of the raw count vector ``h_i(·, k)``."""
        return dict(self._counts)

    def distinct_tags(self) -> int:
        """Number of distinct tags seen so far."""
        return len(self._counts)

    # ------------------------------------------------------------------
    # similarity against external vectors
    # ------------------------------------------------------------------

    def cosine_to(self, vector: Mapping[str, float]) -> float:
        """Cosine similarity between the current rfd and ``vector``.

        Because cosine is scale-invariant the computation runs on the raw
        counts, avoiding an rfd materialisation.  Follows Eq. 16: if
        either side is the zero vector the similarity is 0.

        Args:
            vector: A sparse non-negative tag vector (rfd, stable rfd, or
                raw counts — scaling does not matter).

        Returns:
            Cosine similarity in ``[0, 1]``.
        """
        if self._sumsq == 0:
            return 0.0
        dot = 0.0
        norm_sq = 0.0
        for tag, weight in vector.items():
            norm_sq += weight * weight
            count = self._counts.get(tag)
            if count:
                dot += count * weight
        if norm_sq == 0.0:
            return 0.0
        return min(dot / math.sqrt(self._sumsq * norm_sq), 1.0)

    def copy(self) -> TagFrequencyTable:
        """An independent copy (used by what-if evaluations)."""
        clone = TagFrequencyTable()
        clone._counts = dict(self._counts)
        clone._total = self._total
        clone._sumsq = self._sumsq
        clone._num_posts = self._num_posts
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TagFrequencyTable(posts={self._num_posts}, "
            f"distinct_tags={len(self._counts)}, total={self._total})"
        )
