"""Posts and post sequences (Definitions 1 and 2).

A *post* is a nonempty set of tags assigned to a resource by one tagger in
one tagging operation; each post carries a posting time.  The posts of a
resource, ordered by time, form its *post sequence*
``(p_i(1), p_i(2), ...)``.

:class:`Post` is immutable and hashable.  :class:`PostSequence` is an
ordered container that enforces the data model (nonempty tag sets,
non-decreasing timestamps) and offers the prefix/suffix views the rest of
the library is built on: the paper's quantities ``h``, ``f``, ``F``, ``m``
and ``q`` are all functions of a *prefix* of a post sequence.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import overload

from repro.core.errors import DataModelError
from repro.core.tags import normalize_tag

__all__ = ["Post", "PostSequence"]


@dataclass(frozen=True, slots=True)
class Post:
    """One tagging operation: a nonempty set of tags plus a posting time.

    Attributes:
        tags: The tags assigned in this operation.  Stored as a frozenset
            — Definition 1 models a post as a *set*, so duplicates within
            one operation are meaningless.
        timestamp: Posting time.  The unit is up to the producer (the
            synthetic generator uses fractional days since Jan 1); only
            the ordering matters to the model.
        tagger: Optional identifier of the tagger who made the post.  Not
            used by the paper's metrics but kept for provenance and for
            the tagger-preference extension.
    """

    tags: frozenset[str]
    timestamp: float = 0.0
    tagger: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.tags, frozenset):
            object.__setattr__(self, "tags", frozenset(self.tags))
        if not self.tags:
            raise DataModelError("a post must contain at least one tag (Definition 1)")

    @classmethod
    def of(cls, *tags: str, timestamp: float = 0.0, tagger: str | None = None) -> Post:
        """Build a post from raw tag strings, normalising each tag.

        ``Post.of("Google", "earth ")`` is the ergonomic constructor used
        throughout examples and tests; it lowercases and strips tags via
        :func:`repro.core.tags.normalize_tag`.
        """
        return cls(frozenset(normalize_tag(t) for t in tags), timestamp=timestamp, tagger=tagger)

    def __len__(self) -> int:
        return len(self.tags)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.tags))

    def __contains__(self, tag: object) -> bool:
        return tag in self.tags


@dataclass(slots=True)
class PostSequence:
    """The time-ordered posts of one resource (Definition 2).

    The sequence validates, on construction and on append, that every
    post is well-formed and that timestamps never decrease — the paper
    assumes no two posts share an instant, but real exports contain ties,
    so equal timestamps are allowed and insertion order breaks the tie.

    Indexing is 0-based like any Python sequence; the paper's 1-based
    ``p_i(k)`` is ``seq[k - 1]``.
    """

    _posts: list[Post] = field(default_factory=list)

    def __init__(self, posts: Iterable[Post] = ()) -> None:
        self._posts = []
        for post in posts:
            self.append(post)

    def append(self, post: Post) -> None:
        """Append ``post``, enforcing non-decreasing timestamps.

        Raises:
            DataModelError: If ``post`` is earlier than the current last
                post.
        """
        if not isinstance(post, Post):
            raise DataModelError(f"expected Post, got {type(post).__name__}")
        if self._posts and post.timestamp < self._posts[-1].timestamp:
            raise DataModelError(
                "posts must be appended in non-decreasing timestamp order: "
                f"{post.timestamp} < {self._posts[-1].timestamp}"
            )
        self._posts.append(post)

    def __len__(self) -> int:
        return len(self._posts)

    def __bool__(self) -> bool:
        return bool(self._posts)

    @overload
    def __getitem__(self, index: int) -> Post: ...

    @overload
    def __getitem__(self, index: slice) -> list[Post]: ...

    def __getitem__(self, index: int | slice) -> Post | list[Post]:
        return self._posts[index]

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostSequence):
            return NotImplemented
        return self._posts == other._posts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PostSequence(<{len(self._posts)} posts>)"

    def post(self, k: int) -> Post:
        """Return the paper's ``p_i(k)`` — the k-th post, 1-based.

        Raises:
            IndexError: If ``k`` is outside ``[1, len(self)]``.
        """
        if k < 1 or k > len(self._posts):
            raise IndexError(f"post index k={k} outside [1, {len(self._posts)}]")
        return self._posts[k - 1]

    def prefix(self, k: int) -> Sequence[Post]:
        """Return the first ``k`` posts (the prefix defining ``F_i(k)``).

        ``k`` larger than the sequence is clamped, because callers that
        sweep ``k`` routinely overshoot by one window.
        """
        if k < 0:
            raise DataModelError(f"prefix length must be non-negative, got {k}")
        return self._posts[:k]

    def suffix(self, start: int) -> Sequence[Post]:
        """Return posts after the first ``start`` — the *future* posts.

        Used by the replay oracle: given the initial count ``c_i``, the
        posts ``suffix(c_i)`` are the ones a strategy's post tasks will
        reveal, in order.
        """
        if start < 0:
            raise DataModelError(f"suffix start must be non-negative, got {start}")
        return self._posts[start:]

    def split_at_time(self, cutoff: float) -> tuple[PostSequence, PostSequence]:
        """Split into (posts with ``timestamp <= cutoff``, the rest).

        This is the paper's experimental setup: January posts (the
        initial state ``c``) versus later posts (replayed as completed
        post tasks).
        """
        initial = PostSequence(p for p in self._posts if p.timestamp <= cutoff)
        future = PostSequence(p for p in self._posts if p.timestamp > cutoff)
        return initial, future

    def count_before(self, cutoff: float) -> int:
        """Number of posts with ``timestamp <= cutoff``."""
        return sum(1 for p in self._posts if p.timestamp <= cutoff)

    def distinct_tags(self) -> set[str]:
        """The set of distinct tags over the whole sequence."""
        tags: set[str] = set()
        for post in self._posts:
            tags.update(post.tags)
        return tags

    def total_tag_assignments(self) -> int:
        """Total number of (post, tag) pairs — the paper's ``Σ_t h(t, k)``."""
        return sum(len(post) for post in self._posts)
