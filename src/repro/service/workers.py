"""Simulated crowd workers (the paper's Fig 2 taggers).

A :class:`SimulatedWorker` browses the job board, picks jobs it likes
(topic affinity drives acceptance — the "user preference" of Section VI)
and completes them by generating posts from the resource's latent model
through the usual tagger noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.posts import Post
from repro.simulate.ontology import TopicHierarchy
from repro.simulate.resource_models import ResourceModel
from repro.simulate.taggers import TaggerBehavior, generate_post
from repro.service.jobs import PostTask

__all__ = ["SimulatedWorker", "WorkerPool"]


@dataclass
class SimulatedWorker:
    """One crowd worker with topical preferences.

    Attributes:
        worker_id: Unique identifier.
        favourite_domains: Top-level domains the worker likes; jobs on
            resources from these domains are accepted with
            ``base_acceptance``; others with ``off_topic_acceptance``.
        base_acceptance: Acceptance probability on favourite topics.
        off_topic_acceptance: Acceptance probability elsewhere.
        behavior: The worker's tagging noise profile.
    """

    worker_id: str
    favourite_domains: frozenset[str] = frozenset()
    base_acceptance: float = 0.95
    off_topic_acceptance: float = 0.35
    behavior: TaggerBehavior = field(default_factory=TaggerBehavior)

    def accepts(self, model: ResourceModel, rng: np.random.Generator) -> bool:
        """Whether the worker takes a job on ``model``'s resource."""
        domain = model.primary_category[0]
        probability = (
            self.base_acceptance
            if not self.favourite_domains or domain in self.favourite_domains
            else self.off_topic_acceptance
        )
        return bool(rng.random() < probability)

    def complete(
        self,
        model: ResourceModel,
        post_index: int,
        timestamp: float,
        rng: np.random.Generator,
        observed_counts: dict[str, int] | None = None,
    ) -> Post:
        """Produce the post for a claimed task."""
        return generate_post(
            model,
            post_index,
            timestamp,
            rng,
            self.behavior,
            observed_counts=observed_counts,
        )


class WorkerPool:
    """A pool of simulated workers that services a job board.

    Args:
        workers: The crowd.
        rng: Source of randomness (acceptance draws and post content).
    """

    def __init__(self, workers: list[SimulatedWorker], rng: np.random.Generator) -> None:
        if not workers:
            raise ValueError("worker pool must not be empty")
        self.workers = list(workers)
        self.rng = rng
        self._obs = obs.get()

    @classmethod
    def uniform(
        cls,
        size: int,
        hierarchy: TopicHierarchy,
        rng: np.random.Generator,
        *,
        favourites_per_worker: int = 2,
    ) -> WorkerPool:
        """A pool of ``size`` workers with random favourite domains."""
        domains = hierarchy.domains
        workers = []
        for index in range(size):
            picks = rng.choice(
                len(domains), size=min(favourites_per_worker, len(domains)), replace=False
            )
            workers.append(
                SimulatedWorker(
                    worker_id=f"w{index:03d}",
                    favourite_domains=frozenset(domains[int(i)] for i in picks),
                )
            )
        return cls(workers, rng)

    def try_fill(
        self,
        task: PostTask,
        model: ResourceModel,
        post_index: int,
        timestamp: float,
        observed_counts: dict[str, int] | None = None,
        *,
        max_offers: int = 10,
    ) -> Post | None:
        """Offer ``task`` to random workers until someone completes it.

        Args:
            task: The open task.
            model: Latent model of the task's resource.
            post_index: Position of the would-be post in the resource's
                sequence.
            timestamp: Campaign time for the post.
            observed_counts: Current tag counts (imitation dynamics).
            max_offers: Offers before the task is abandoned this epoch.

        Returns:
            The completed post, or ``None`` if every offered worker
            declined (the task stays open).
        """
        telemetry = self._obs
        declined = 0
        for _ in range(max_offers):
            worker = self.workers[int(self.rng.integers(0, len(self.workers)))]
            if not worker.accepts(model, self.rng):
                declined += 1
                continue
            task.claim(worker.worker_id)
            post = worker.complete(
                model, post_index, timestamp, self.rng, observed_counts
            )
            task.complete(post)
            if telemetry.enabled:
                telemetry.count("workers.offers", declined + 1)
                telemetry.count("workers.accepted")
                if declined:
                    telemetry.count("workers.declined", declined)
            return post
        if telemetry.enabled:
            telemetry.count("workers.offers", declined)
            telemetry.count("workers.declined", declined)
            telemetry.count("workers.abandoned")
        return None
