"""The incentive-tagging campaign: the paper's Fig 2 loop as a service.

An :class:`IncentiveCampaign` wires everything together:

1. an allocation strategy proposes resources (Fig 2 step 1),
2. the job board publishes post tasks and a simulated worker pool claims
   and completes them (step 2),
3. completed posts update the per-resource stability trackers (step 3),
4. the reward ledger pays the workers (step 4).

Beyond the paper's sketch, the campaign performs **adaptive stopping**
(an extension in the spirit of its Section VI): each resource's observed
MA score is tracked online, and once a resource crosses the stability
threshold the campaign stops buying posts for it — no ground truth
needed, so this is deployable on a real system.

Two stability backends are available for step 3:

* ``"tracker"`` (default) — one scalar
  :class:`~repro.core.stability.StabilityTracker` per resource, updated
  post by post; stable resources are retired the moment they cross.
* ``"engine"`` — the vectorized
  :class:`~repro.engine.columnar.StabilityBank`: completed posts are
  buffered during the epoch and applied as one batched update at epoch
  end, so large campaigns pay the engine's amortized per-event cost.
  Retirement consequently happens at epoch granularity (a resource may
  receive a few extra posts within its crossing epoch), which matches
  how a real system would batch its bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.errors import AllocationError
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, StabilityTracker
from repro.engine.columnar import StabilityBank
from repro.engine.events import TagEvent
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.oracle import GenerativeTaggerSource, popularity_chooser
from repro.simulate.resource_models import ResourceModel
from repro.service.jobs import JobBoard
from repro.service.ledger import RewardLedger
from repro.service.workers import WorkerPool

__all__ = ["EpochReport", "CampaignResult", "IncentiveCampaign"]


@dataclass(frozen=True)
class EpochReport:
    """What happened in one campaign epoch.

    Attributes:
        epoch: Epoch number (0-based).
        published: Tasks published.
        completed: Tasks completed and paid.
        unfilled: Tasks every offered worker declined (expired).
        spent: Reward units paid this epoch.
        observed_stable: Resources whose *observed* MA has crossed the
            stopping threshold so far.
    """

    epoch: int
    published: int
    completed: int
    unfilled: int
    spent: int
    observed_stable: int


@dataclass
class CampaignResult:
    """Final state of a campaign run.

    Attributes:
        reports: Per-epoch reports, in order.
        final_counts: Posts per resource at the end (initial + bought).
        bought_posts: The posts the campaign's tasks produced, per
            resource (in completion order).
        ledger: The reward ledger (audit log included).
        board: The job board with the full task history.
        stopped_resources: Indices the adaptive stopper retired.
    """

    reports: list[EpochReport]
    final_counts: np.ndarray
    bought_posts: list[list[Post]]
    ledger: RewardLedger
    board: JobBoard
    stopped_resources: set[int]

    @property
    def total_completed(self) -> int:
        """All completed tasks across epochs."""
        return sum(r.completed for r in self.reports)

    def render(self) -> str:
        lines = [
            f"campaign: {len(self.reports)} epochs, "
            f"{self.total_completed} tasks completed, "
            f"{self.ledger.spent}/{self.ledger.budget} units spent, "
            f"{len(self.stopped_resources)} resources adaptively stopped"
        ]
        for report in self.reports:
            lines.append(
                f"  epoch {report.epoch:3d}: published={report.published:4d} "
                f"completed={report.completed:4d} unfilled={report.unfilled:3d} "
                f"stable={report.observed_stable:4d}"
            )
        return "\n".join(lines)


class IncentiveCampaign:
    """Runs the Fig 2 loop with a strategy, a worker pool and a budget.

    Args:
        models: Latent resource models (what workers tag from).
        initial_posts: Observable initial posts per resource.
        strategy: Any Algorithm-1 strategy (FP recommended, as in the
            paper's conclusions).
        workers: The simulated crowd.
        budget: Total reward units.
        rng: Randomness for worker selection and free choice.
        omega: MA window of the adaptive stopper.
        stop_tau: Observed-MA threshold above which a resource is
            retired (``None`` disables adaptive stopping).
        batch_size: Task offers attempted per epoch.
        reward_per_task: Units paid per completed task.
        stability_backend: ``"tracker"`` for per-resource scalar trackers
            (per-post stopping), ``"engine"`` for the vectorized
            :class:`StabilityBank` fast path (epoch-batched stopping).
    """

    def __init__(
        self,
        models: Sequence[ResourceModel],
        initial_posts: Sequence[Sequence[Post]],
        strategy: AllocationStrategy,
        workers: WorkerPool,
        budget: int,
        rng: np.random.Generator,
        *,
        omega: int = DEFAULT_OMEGA,
        stop_tau: float | None = 0.999,
        batch_size: int = 25,
        reward_per_task: int = 1,
        stability_backend: str = "tracker",
    ) -> None:
        if len(models) != len(initial_posts):
            raise AllocationError("models and initial_posts must align")
        if batch_size < 1:
            raise AllocationError("batch_size must be positive")
        if stability_backend not in ("tracker", "engine"):
            raise AllocationError(
                f"unknown stability backend {stability_backend!r} "
                "(expected 'tracker' or 'engine')"
            )
        self.models = list(models)
        self.initial_posts = [list(posts) for posts in initial_posts]
        self.strategy = strategy
        self.workers = workers
        self.rng = rng
        self.omega = omega
        self.stop_tau = stop_tau
        self.batch_size = batch_size
        self.reward_per_task = reward_per_task
        self.stability_backend = stability_backend

        self.board = JobBoard()
        self.ledger = RewardLedger(budget)
        self._counts = np.array([len(p) for p in self.initial_posts], dtype=np.int64)
        self._bought: list[list[Post]] = [[] for _ in self.models]
        self._stopped: set[int] = set()

        self._trackers: list[StabilityTracker] = []
        self._bank: StabilityBank | None = None
        if stability_backend == "tracker":
            self._trackers = [StabilityTracker(omega, stop_tau) for _ in self.models]
            for tracker, posts in zip(self._trackers, self.initial_posts):
                tracker.add_posts(posts)
        else:
            self._resource_ids = [f"r{i}" for i in range(len(self.models))]
            self._bank = StabilityBank(omega, stop_tau, initial_rows=len(self.models))
            self._bank.ensure(self._resource_ids)
            self._bank.ingest_events(
                event
                for rid, posts in zip(self._resource_ids, self.initial_posts)
                for event in (TagEvent.from_post(rid, post) for post in posts)
            )
            # live observed counts, kept per post so workers' imitation
            # dynamics see intra-epoch updates while the bank batches
            self._observed: list[dict[str, int]] = []
            for posts in self.initial_posts:
                counts: dict[str, int] = {}
                for post in posts:
                    for tag in post.tags:
                        counts[tag] = counts.get(tag, 0) + 1
                self._observed.append(counts)

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec,
        corpus,
        *,
        rng: np.random.Generator | None = None,
    ) -> IncentiveCampaign:
        """Build a campaign from a :class:`~repro.api.specs.CampaignSpec`.

        The single declarative entry point used by :func:`repro.api.run`
        and the CLI: the strategy comes from the registry (validated
        against its declared parameter schema), the worker pool is drawn
        from the corpus' taxonomy, and every knob maps 1:1 onto a spec
        field.

        Args:
            spec: The campaign description.
            corpus: A materialized corpus
                (:class:`~repro.api.corpus.MaterializedCorpus`); must
                carry latent models, i.e. be a generated kind.
            rng: Optional randomness override (default: seeded from
                ``spec.seed``, shared by worker pool and free choice —
                the same wiring the old CLI hand-rolled).
        """
        from repro.api.registry import STRATEGIES

        models = corpus.require_models()
        if rng is None:
            rng = np.random.default_rng(spec.seed)
        pool = WorkerPool.uniform(spec.workers, corpus.hierarchy, rng)
        strategy = STRATEGIES.create(spec.strategy, **spec.params)
        split = corpus.dataset.split(corpus.require_cutoff())
        return cls(
            models,
            [split.initial_posts(i) for i in range(split.n)],
            strategy,
            pool,
            budget=spec.budget,
            rng=rng,
            omega=spec.omega,
            stop_tau=spec.stop_tau,
            batch_size=spec.batch_size,
            reward_per_task=spec.reward_per_task,
            stability_backend=spec.stability_backend,
        )

    def _observed_counts(self, index: int) -> dict[str, int]:
        """A copy of the resource's observed tag counts (for workers)."""
        if self._bank is not None:
            return dict(self._observed[index])
        return self._trackers[index].frequency_table().counts()

    def _make_context(self) -> AllocationContext:
        """Strategy context; free choice follows current popularity."""
        weights = self._counts.astype(np.float64) + 1.0

        def forbidden(index: int) -> Post:
            raise AllocationError(
                "campaign strategies must not pull posts from the source; "
                "posts come from the worker pool"
            )

        source = GenerativeTaggerSource(
            forbidden, popularity_chooser(weights, self.rng)
        )
        return AllocationContext(
            n=len(self.models),
            initial_counts=self._counts.copy(),
            initial_posts=self.initial_posts,
            source=source,
            budget=self.ledger.budget,
        )

    def _retire_stable(self) -> None:
        """Adaptive stopping: retire resources whose observed MA crossed."""
        if self.stop_tau is None:
            return
        if self._bank is not None:
            for index, rid in enumerate(self._resource_ids):
                if index not in self._stopped and self._bank.is_stable(rid):
                    self._retire(index)
            return
        for index, tracker in enumerate(self._trackers):
            if index not in self._stopped and tracker.is_stable:
                self._retire(index)

    def _retire(self, index: int) -> None:
        self._stopped.add(index)
        self.strategy.mark_exhausted(index)

    # ------------------------------------------------------------------

    def run(self, max_epochs: int = 100) -> CampaignResult:
        """Run epochs until the budget is gone or nothing is proposable.

        Args:
            max_epochs: Hard stop on campaign length.

        Returns:
            The final :class:`CampaignResult`.
        """
        self.strategy.initialize(self._make_context())
        self._retire_stable()

        reports: list[EpochReport] = []
        for epoch in range(max_epochs):
            if self.ledger.remaining < self.reward_per_task:
                break
            published = completed = unfilled = spent = 0
            epoch_events: list[TagEvent] = []
            for _ in range(self.batch_size):
                if self.ledger.remaining < self.reward_per_task:
                    break
                index = self.strategy.choose()
                if index is None:
                    break
                task = self.board.publish(index, reward=self.reward_per_task)
                published += 1
                post = self.workers.try_fill(
                    task,
                    self.models[index],
                    post_index=int(self._counts[index]),
                    timestamp=float(epoch),
                    observed_counts=self._observed_counts(index),
                )
                if post is None:
                    task.expire()
                    unfilled += 1
                    self.strategy.notify_refusal(index)
                    continue
                self.ledger.pay(task.task_id, task.worker_id or "?", task.reward)
                spent += task.reward
                completed += 1
                self._counts[index] += 1
                self._bought[index].append(post)
                self.strategy.update(index, post)
                if self._bank is not None:
                    counts = self._observed[index]
                    for tag in post.tags:
                        counts[tag] = counts.get(tag, 0) + 1
                    epoch_events.append(
                        TagEvent.from_post(self._resource_ids[index], post)
                    )
                else:
                    tracker = self._trackers[index]
                    tracker.add_post(post.tags)
                    if (
                        self.stop_tau is not None
                        and index not in self._stopped
                        and tracker.is_stable
                    ):
                        self._retire(index)
            if self._bank is not None and epoch_events:
                # engine fast path: one vectorized stability update per epoch
                report = self._bank.ingest_events(epoch_events)
                if self.stop_tau is not None:
                    for rid in report.newly_stable:
                        index = int(rid[1:])
                        if index not in self._stopped:
                            self._retire(index)
            reports.append(
                EpochReport(
                    epoch=epoch,
                    published=published,
                    completed=completed,
                    unfilled=unfilled,
                    spent=spent,
                    observed_stable=len(self._stopped),
                )
            )
            if published == 0:
                break
        assert self.ledger.reconcile()
        return CampaignResult(
            reports=reports,
            final_counts=self._counts.copy(),
            bought_posts=[list(posts) for posts in self._bought],
            ledger=self.ledger,
            board=self.board,
            stopped_resources=set(self._stopped),
        )
