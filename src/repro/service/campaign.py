"""The incentive-tagging campaign: the paper's Fig 2 loop as a service.

An :class:`IncentiveCampaign` wires everything together:

1. an allocation strategy proposes resources (Fig 2 step 1),
2. the job board publishes post tasks and a simulated worker pool claims
   and completes them (step 2),
3. completed posts update the per-resource stability trackers (step 3),
4. the reward ledger pays the workers (step 4).

Beyond the paper's sketch, the campaign performs **adaptive stopping**
(an extension in the spirit of its Section VI): each resource's observed
MA score is tracked online, and once a resource crosses the stability
threshold the campaign stops buying posts for it — no ground truth
needed, so this is deployable on a real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.errors import AllocationError
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA, StabilityTracker
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.oracle import GenerativeTaggerSource, popularity_chooser
from repro.simulate.resource_models import ResourceModel
from repro.service.jobs import JobBoard
from repro.service.ledger import RewardLedger
from repro.service.workers import WorkerPool

__all__ = ["EpochReport", "CampaignResult", "IncentiveCampaign"]


@dataclass(frozen=True)
class EpochReport:
    """What happened in one campaign epoch.

    Attributes:
        epoch: Epoch number (0-based).
        published: Tasks published.
        completed: Tasks completed and paid.
        unfilled: Tasks every offered worker declined (expired).
        spent: Reward units paid this epoch.
        observed_stable: Resources whose *observed* MA has crossed the
            stopping threshold so far.
    """

    epoch: int
    published: int
    completed: int
    unfilled: int
    spent: int
    observed_stable: int


@dataclass
class CampaignResult:
    """Final state of a campaign run.

    Attributes:
        reports: Per-epoch reports, in order.
        final_counts: Posts per resource at the end (initial + bought).
        bought_posts: The posts the campaign's tasks produced, per
            resource (in completion order).
        ledger: The reward ledger (audit log included).
        board: The job board with the full task history.
        stopped_resources: Indices the adaptive stopper retired.
    """

    reports: list[EpochReport]
    final_counts: np.ndarray
    bought_posts: list[list[Post]]
    ledger: RewardLedger
    board: JobBoard
    stopped_resources: set[int]

    @property
    def total_completed(self) -> int:
        """All completed tasks across epochs."""
        return sum(r.completed for r in self.reports)

    def render(self) -> str:
        lines = [
            f"campaign: {len(self.reports)} epochs, "
            f"{self.total_completed} tasks completed, "
            f"{self.ledger.spent}/{self.ledger.budget} units spent, "
            f"{len(self.stopped_resources)} resources adaptively stopped"
        ]
        for report in self.reports:
            lines.append(
                f"  epoch {report.epoch:3d}: published={report.published:4d} "
                f"completed={report.completed:4d} unfilled={report.unfilled:3d} "
                f"stable={report.observed_stable:4d}"
            )
        return "\n".join(lines)


class IncentiveCampaign:
    """Runs the Fig 2 loop with a strategy, a worker pool and a budget.

    Args:
        models: Latent resource models (what workers tag from).
        initial_posts: Observable initial posts per resource.
        strategy: Any Algorithm-1 strategy (FP recommended, as in the
            paper's conclusions).
        workers: The simulated crowd.
        budget: Total reward units.
        rng: Randomness for worker selection and free choice.
        omega: MA window of the adaptive stopper.
        stop_tau: Observed-MA threshold above which a resource is
            retired (``None`` disables adaptive stopping).
        batch_size: Task offers attempted per epoch.
        reward_per_task: Units paid per completed task.
    """

    def __init__(
        self,
        models: Sequence[ResourceModel],
        initial_posts: Sequence[Sequence[Post]],
        strategy: AllocationStrategy,
        workers: WorkerPool,
        budget: int,
        rng: np.random.Generator,
        *,
        omega: int = DEFAULT_OMEGA,
        stop_tau: float | None = 0.999,
        batch_size: int = 25,
        reward_per_task: int = 1,
    ) -> None:
        if len(models) != len(initial_posts):
            raise AllocationError("models and initial_posts must align")
        if batch_size < 1:
            raise AllocationError("batch_size must be positive")
        self.models = list(models)
        self.initial_posts = [list(posts) for posts in initial_posts]
        self.strategy = strategy
        self.workers = workers
        self.rng = rng
        self.omega = omega
        self.stop_tau = stop_tau
        self.batch_size = batch_size
        self.reward_per_task = reward_per_task

        self.board = JobBoard()
        self.ledger = RewardLedger(budget)
        self._trackers = [StabilityTracker(omega, stop_tau) for _ in self.models]
        for tracker, posts in zip(self._trackers, self.initial_posts):
            tracker.add_posts(posts)
        self._counts = np.array([len(p) for p in self.initial_posts], dtype=np.int64)
        self._bought: list[list[Post]] = [[] for _ in self.models]
        self._stopped: set[int] = set()

    # ------------------------------------------------------------------

    def _make_context(self) -> AllocationContext:
        """Strategy context; free choice follows current popularity."""
        weights = self._counts.astype(np.float64) + 1.0

        def forbidden(index: int) -> Post:
            raise AllocationError(
                "campaign strategies must not pull posts from the source; "
                "posts come from the worker pool"
            )

        source = GenerativeTaggerSource(
            forbidden, popularity_chooser(weights, self.rng)
        )
        return AllocationContext(
            n=len(self.models),
            initial_counts=self._counts.copy(),
            initial_posts=self.initial_posts,
            source=source,
            budget=self.ledger.budget,
        )

    def _retire_stable(self) -> None:
        """Adaptive stopping: retire resources whose observed MA crossed."""
        if self.stop_tau is None:
            return
        for index, tracker in enumerate(self._trackers):
            if index not in self._stopped and tracker.is_stable:
                self._stopped.add(index)
                self.strategy.mark_exhausted(index)

    # ------------------------------------------------------------------

    def run(self, max_epochs: int = 100) -> CampaignResult:
        """Run epochs until the budget is gone or nothing is proposable.

        Args:
            max_epochs: Hard stop on campaign length.

        Returns:
            The final :class:`CampaignResult`.
        """
        self.strategy.initialize(self._make_context())
        self._retire_stable()

        reports: list[EpochReport] = []
        for epoch in range(max_epochs):
            if self.ledger.remaining < self.reward_per_task:
                break
            published = completed = unfilled = spent = 0
            for _ in range(self.batch_size):
                if self.ledger.remaining < self.reward_per_task:
                    break
                index = self.strategy.choose()
                if index is None:
                    break
                task = self.board.publish(index, reward=self.reward_per_task)
                published += 1
                tracker = self._trackers[index]
                post = self.workers.try_fill(
                    task,
                    self.models[index],
                    post_index=int(self._counts[index]),
                    timestamp=float(epoch),
                    observed_counts=tracker.frequency_table().counts(),
                )
                if post is None:
                    task.expire()
                    unfilled += 1
                    self.strategy.notify_refusal(index)
                    continue
                self.ledger.pay(task.task_id, task.worker_id or "?", task.reward)
                spent += task.reward
                completed += 1
                self._counts[index] += 1
                self._bought[index].append(post)
                tracker.add_post(post.tags)
                self.strategy.update(index, post)
                if (
                    self.stop_tau is not None
                    and index not in self._stopped
                    and tracker.is_stable
                ):
                    self._stopped.add(index)
                    self.strategy.mark_exhausted(index)
            reports.append(
                EpochReport(
                    epoch=epoch,
                    published=published,
                    completed=completed,
                    unfilled=unfilled,
                    spent=spent,
                    observed_stable=len(self._stopped),
                )
            )
            if published == 0:
                break
        assert self.ledger.reconcile()
        return CampaignResult(
            reports=reports,
            final_counts=self._counts.copy(),
            bought_posts=[list(posts) for posts in self._bought],
            ledger=self.ledger,
            board=self.board,
            stopped_resources=set(self._stopped),
        )
