"""The incentive-tagging campaign: the paper's Fig 2 loop as a service.

An :class:`IncentiveCampaign` wires everything together:

1. an allocation strategy proposes resources (Fig 2 step 1),
2. the job board publishes post tasks and a simulated worker pool claims
   and completes them (step 2),
3. completed posts update the campaign's stability monitor (step 3),
4. the reward ledger pays the workers (step 4).

Beyond the paper's sketch, the campaign performs **adaptive stopping**
(an extension in the spirit of its Section VI): each resource's observed
MA score is tracked online, and once a resource crosses the stability
threshold the campaign stops buying posts for it — no ground truth
needed, so this is deployable on a real system.

All stability state lives behind one
:class:`~repro.allocation.monitor.StabilityMonitor`, built through
:func:`~repro.allocation.monitor.make_monitor` from the
``stability_backend`` name — the same factory (and the same three
backends) the allocation runner and the CLI use:

* ``"tracker"`` (default) — per-resource scalar trackers, updated post
  by post; stable resources are retired the moment they cross.
* ``"engine"`` — the vectorized columnar bank: completed posts are
  buffered during the epoch and applied as one batched update, so large
  campaigns pay the engine's amortized per-event cost.  Retirement
  consequently happens at epoch granularity (a resource may receive a
  few extra posts within its crossing epoch), which matches how a real
  system would batch its bookkeeping.
* ``"sharded"`` — the engine bank behind the CRC32 shard router, for
  campaigns whose resource population outgrows one dense count block;
  same epoch-granular retirement as ``"engine"``.

The monitor's ``batched`` flag decides the drain cadence: per-post for
the tracker backend (exact scalar semantics), per-epoch for the engine
backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro import faults, obs
from repro.core.errors import AllocationError
from repro.faults import FaultInjected
from repro.core.posts import Post
from repro.core.stability import DEFAULT_OMEGA
from repro.allocation.base import AllocationContext, AllocationStrategy
from repro.allocation.monitor import StabilityMonitor, make_monitor
from repro.allocation.oracle import GenerativeTaggerSource, popularity_chooser
from repro.simulate.resource_models import ResourceModel
from repro.service.jobs import JobBoard
from repro.service.ledger import RewardLedger
from repro.service.workers import WorkerPool

__all__ = ["EpochReport", "CampaignResult", "IncentiveCampaign"]


@dataclass(frozen=True)
class EpochReport:
    """What happened in one campaign epoch.

    Attributes:
        epoch: Epoch number (0-based).
        published: Tasks published.
        completed: Tasks completed and paid.
        unfilled: Tasks every offered worker declined (expired).
        spent: Reward units paid this epoch.
        observed_stable: Resources whose *observed* MA has crossed the
            stopping threshold so far.
        withdrawn: Tasks still ``OPEN`` at the end of the epoch that the
            board withdrew (abandoned tasks are expired, never left open
            forever).
        task_counts: The board's cumulative task-state histogram at the
            end of the epoch (``state value -> count``), straight from
            :meth:`~repro.service.jobs.JobBoard.counts_by_state`.
    """

    epoch: int
    published: int
    completed: int
    unfilled: int
    spent: int
    observed_stable: int
    withdrawn: int = 0
    task_counts: dict[str, int] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Final state of a campaign run.

    Attributes:
        reports: Per-epoch reports, in order.
        final_counts: Posts per resource at the end (initial + bought).
        bought_posts: The posts the campaign's tasks produced, per
            resource (in completion order).
        ledger: The reward ledger (audit log included).
        board: The job board with the full task history.
        stopped_resources: Indices the adaptive stopper retired.
    """

    reports: list[EpochReport]
    final_counts: np.ndarray
    bought_posts: list[list[Post]]
    ledger: RewardLedger
    board: JobBoard
    stopped_resources: set[int]

    @property
    def total_completed(self) -> int:
        """All completed tasks across epochs."""
        return sum(r.completed for r in self.reports)

    def trace_payload(self) -> dict:
        """Canonical JSON-safe trace of everything decision-visible.

        The byte-identity currency of the repo: the pinned fixture
        (``tests/fixtures/campaign_traces.json``), the campaign-server
        acceptance tests and the crash/resume determinism tests all
        compare these payloads.  Epoch reports, final counts and the
        stopped set capture the decision sequence; the bought-posts
        digest pins the exact post content (tags and timestamps) the
        worker pool produced, so any divergence in rng consumption shows
        up even when the aggregate numbers happen to agree.  Additive
        report fields (``withdrawn``, ``task_counts``) are deliberately
        excluded to keep historical fixtures stable.
        """
        import hashlib
        import json

        bought = [
            [[round(post.timestamp, 9), sorted(post.tags)] for post in posts]
            for posts in self.bought_posts
        ]
        return {
            "epochs": [
                [r.epoch, r.published, r.completed, r.unfilled, r.spent, r.observed_stable]
                for r in self.reports
            ],
            "final_counts": self.final_counts.tolist(),
            "stopped": sorted(self.stopped_resources),
            "spent": self.ledger.spent,
            "bought_sha256": hashlib.sha256(
                json.dumps(bought, sort_keys=True).encode()
            ).hexdigest(),
        }

    def render(self) -> str:
        lines = [
            f"campaign: {len(self.reports)} epochs, "
            f"{self.total_completed} tasks completed, "
            f"{self.ledger.spent}/{self.ledger.budget} units spent, "
            f"{len(self.stopped_resources)} resources adaptively stopped"
        ]
        for report in self.reports:
            lines.append(
                f"  epoch {report.epoch:3d}: published={report.published:4d} "
                f"completed={report.completed:4d} unfilled={report.unfilled:3d} "
                f"stable={report.observed_stable:4d}"
            )
        return "\n".join(lines)


class IncentiveCampaign:
    """Runs the Fig 2 loop with a strategy, a worker pool and a budget.

    Args:
        models: Latent resource models (what workers tag from).
        initial_posts: Observable initial posts per resource.
        strategy: Any Algorithm-1 strategy (FP recommended, as in the
            paper's conclusions).
        workers: The simulated crowd.
        budget: Total reward units.
        rng: Randomness for worker selection and free choice.
        omega: MA window of the adaptive stopper.
        stop_tau: Observed-MA threshold above which a resource is
            retired (``None`` disables adaptive stopping).
        batch_size: Task offers attempted per epoch.
        reward_per_task: Units paid per completed task.
        max_offers: Workers offered one task before it is abandoned for
            the epoch (forwarded to
            :meth:`~repro.service.workers.WorkerPool.try_fill`).
        stability_backend: Monitor backend name, passed straight to
            :func:`~repro.allocation.monitor.make_monitor` —
            ``"tracker"`` (per-post stopping), ``"engine"`` (vectorized,
            epoch-batched stopping) or ``"sharded"`` (engine banks behind
            a hash router, for large resource populations).
        stability_shards: Shard count of the ``"sharded"`` backend.
        stability_executor: How the ``"sharded"`` backend runs its
            per-shard ingest kernels (``"serial"``, ``"thread"`` or
            ``"process"``); campaign traces are byte-identical for every
            choice.
        stability_workers: Pool size for the threaded/process executors
            (``0`` = one per core).
        stability_min_parallel_events: Override of the sharded bank's
            parallel-dispatch cutoff (``None`` keeps the default).

    A campaign owns its monitor's executor pool: call :meth:`close` (or
    use the campaign as a context manager) to release it.  Construction
    itself is exception-safe — if priming the monitor fails, the pool is
    released before the error propagates.
    """

    def __init__(
        self,
        models: Sequence[ResourceModel],
        initial_posts: Sequence[Sequence[Post]],
        strategy: AllocationStrategy,
        workers: WorkerPool,
        budget: int,
        rng: np.random.Generator,
        *,
        omega: int = DEFAULT_OMEGA,
        stop_tau: float | None = 0.999,
        batch_size: int = 25,
        reward_per_task: int = 1,
        max_offers: int = 10,
        stability_backend: str = "tracker",
        stability_shards: int = 4,
        stability_executor: str = "serial",
        stability_workers: int = 0,
        stability_min_parallel_events: int | None = None,
    ) -> None:
        if len(models) != len(initial_posts):
            raise AllocationError("models and initial_posts must align")
        if batch_size < 1:
            raise AllocationError("batch_size must be positive")
        if max_offers < 1:
            raise AllocationError("max_offers must be positive")
        self.models = list(models)
        self.initial_posts = [list(posts) for posts in initial_posts]
        self.strategy = strategy
        self.workers = workers
        self.rng = rng
        self.omega = omega
        self.stop_tau = stop_tau
        self.batch_size = batch_size
        self.reward_per_task = reward_per_task
        self.max_offers = max_offers
        self.stability_backend = stability_backend

        self._obs = obs.get()
        self.board = JobBoard()
        self.ledger = RewardLedger(budget)
        self._counts = np.array([len(p) for p in self.initial_posts], dtype=np.int64)
        self._bought: list[list[Post]] = [[] for _ in self.models]
        self._stopped: set[int] = set()
        self._reports: list[EpochReport] = []
        self._journal: list[list[list]] = []
        self._epoch = 0
        self._started = False
        self._finished = False

        # Workers read observed counts between engine flushes, so the
        # monitor keeps live frequency dicts (track_observed).
        monitor = make_monitor(
            stability_backend,
            omega,
            stop_tau,
            track_observed=True,
            n_shards=stability_shards,
            executor=stability_executor,
            workers=stability_workers,
            parallel_min_events=stability_min_parallel_events,
        )
        if monitor is None:  # make_monitor(None) means "no monitoring"
            raise AllocationError(
                "campaign requires a stability backend; "
                f"stability_backend must not be {stability_backend!r}"
            )
        self._monitor: StabilityMonitor = monitor
        self._closed = False
        try:
            self._monitor.begin(len(self.models), self.initial_posts)
        except BaseException:
            # begin() may spawn (and then lose) worker processes; never
            # leak the pool when construction fails
            self.close()
            raise

    # ------------------------------------------------------------------

    @classmethod
    def from_spec(
        cls,
        spec,
        corpus,
        *,
        rng: np.random.Generator | None = None,
    ) -> IncentiveCampaign:
        """Build a campaign from a :class:`~repro.api.specs.CampaignSpec`.

        The single declarative entry point used by :func:`repro.api.run`
        and the CLI: the strategy comes from the registry (validated
        against its declared parameter schema), the worker pool is drawn
        from the corpus' taxonomy, and every knob maps 1:1 onto a spec
        field.

        Args:
            spec: The campaign description.
            corpus: A materialized corpus
                (:class:`~repro.api.corpus.MaterializedCorpus`); must
                carry latent models, i.e. be a generated kind.
            rng: Optional randomness override (default: seeded from
                ``spec.seed``, shared by worker pool and free choice —
                the same wiring the old CLI hand-rolled).
        """
        from repro.api.registry import STRATEGIES

        models = corpus.require_models()
        if getattr(corpus, "quality", None) is not None:
            # Pack-built corpus: record which pack fed this campaign so
            # fleet dashboards can slice campaign metrics by workload.
            obs.get().count(f"campaign.corpus.pack.{corpus.spec.pack}")
        if rng is None:
            rng = np.random.default_rng(spec.seed)
        pool = WorkerPool.uniform(spec.workers, corpus.hierarchy, rng)
        strategy = STRATEGIES.create(spec.strategy, **spec.params)
        split = corpus.dataset.split(corpus.require_cutoff())
        return cls(
            models,
            [split.initial_posts(i) for i in range(split.n)],
            strategy,
            pool,
            budget=spec.budget,
            rng=rng,
            omega=spec.omega,
            stop_tau=spec.stop_tau,
            batch_size=spec.batch_size,
            reward_per_task=spec.reward_per_task,
            max_offers=spec.max_offers,
            stability_backend=spec.stability_backend,
            stability_shards=spec.execution.shards,
            stability_executor=spec.execution.backend,
            stability_workers=spec.execution.workers,
            stability_min_parallel_events=spec.execution.min_parallel_events,
        )

    @property
    def monitor(self) -> StabilityMonitor:
        """The campaign's stability monitor (read-only observability)."""
        return self._monitor

    def close(self) -> None:
        """Release the monitor's executor pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        monitor = getattr(self, "_monitor", None)
        if monitor is not None:
            monitor.close()

    def __enter__(self) -> IncentiveCampaign:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _make_context(self) -> AllocationContext:
        """Strategy context; free choice follows current popularity."""
        weights = self._counts.astype(np.float64) + 1.0

        def forbidden(index: int) -> Post:
            raise AllocationError(
                "campaign strategies must not pull posts from the source; "
                "posts come from the worker pool"
            )

        source = GenerativeTaggerSource(
            forbidden, popularity_chooser(weights, self.rng)
        )
        return AllocationContext(
            n=len(self.models),
            initial_counts=self._counts.copy(),
            initial_posts=self.initial_posts,
            source=source,
            budget=self.ledger.budget,
        )

    def _drain_and_retire(self) -> None:
        """Retire every resource the monitor reports as newly stable."""
        if self.stop_tau is None:
            return
        telemetry = self._obs
        for index in self._monitor.drain_newly_stable():
            if index not in self._stopped:
                self._stopped.add(index)
                self.strategy.mark_exhausted(index)
                if telemetry.enabled:
                    # the stable-point arrival curve: one instant trace
                    # event per retirement plus a running gauge
                    telemetry.count("campaign.retired")
                    telemetry.gauge("campaign.stable_total", len(self._stopped))
                    telemetry.event(
                        "campaign.stable",
                        resource=index,
                        stable_total=len(self._stopped),
                    )

    # ------------------------------------------------------------------
    # stepwise execution (the campaign-server driver entry points)
    # ------------------------------------------------------------------

    @property
    def epochs_run(self) -> int:
        """Epochs completed so far."""
        return self._epoch

    @property
    def finished(self) -> bool:
        """Whether the campaign has nothing left to do."""
        return self._finished

    @property
    def journal(self) -> list[list[list]]:
        """Per-epoch task outcomes, JSON-safe.

        One list per epoch; each entry is ``["done", index, worker_id,
        sorted_tags, timestamp, tagger]`` for a completed task or
        ``["refused", index]`` for an abandoned one.  Replaying the
        journal through :meth:`replay_epoch` on a freshly built campaign
        reproduces this campaign's state exactly — the durable-resume
        path of :mod:`repro.server`.
        """
        return self._journal

    def start(self) -> None:
        """INIT: prime the strategy and retire already-stable resources.

        Idempotent; :meth:`run` calls it automatically.
        """
        if self._started:
            return
        self._started = True
        self.strategy.initialize(self._make_context())
        self._drain_and_retire()  # resources already stable at kickoff

    def step_epoch(self) -> EpochReport | None:
        """Run one live epoch; ``None`` once the campaign is finished."""
        injected = faults.check("campaign.epoch")
        if injected is not None and injected.kind == "error":
            # replay_epoch never fires this site: recovery paths must
            # not re-trip the fault that killed the original attempt
            raise FaultInjected(
                f"injected campaign fault at epoch {self.epochs_run}"
            )
        return self._run_epoch(None)

    def replay_epoch(self, events: Sequence[Sequence]) -> EpochReport | None:
        """Re-apply one journaled epoch without consuming worker draws.

        The scripted twin of :meth:`step_epoch`: task outcomes come from
        ``events`` (one :attr:`journal` epoch) instead of the worker
        pool, but every state update — strategy CHOOSE/UPDATE hooks,
        board transitions, ledger payouts, monitor ingest, adaptive
        stopping — runs through the exact live-path code, so the rebuilt
        campaign is indistinguishable from the one that wrote the
        journal.  (CHOOSE is still called for its state effects; the
        journaled index is authoritative, which also covers strategies
        whose choice itself is random, e.g. FC.  Any RNG consumed here
        is irrelevant: resume restores the generator state afterwards.)
        """
        return self._run_epoch(list(events))

    def _run_epoch(self, script: list | None) -> EpochReport | None:
        if self._started is False:
            raise AllocationError("campaign epoch stepped before start()")
        if self._finished or self.ledger.remaining < self.reward_per_task:
            self._finished = True
            return None
        monitor = self._monitor
        per_post_stopping = not monitor.batched
        telemetry = self._obs
        epoch = self._epoch
        epoch_started = time.perf_counter() if telemetry.enabled else 0.0
        published = completed = unfilled = spent = 0
        events: list[list] = []
        steps = self.batch_size if script is None else len(script)
        for step in range(steps):
            if self.ledger.remaining < self.reward_per_task:
                break
            index = self.strategy.choose()
            if script is not None:
                # the journaled choice is authoritative (identical for
                # deterministic strategies; FC redraws are discarded)
                index = int(script[step][1])
            if index is None:
                break
            task = self.board.publish(index, reward=self.reward_per_task)
            published += 1
            if script is None:
                post = self.workers.try_fill(
                    task,
                    self.models[index],
                    post_index=int(self._counts[index]),
                    timestamp=float(epoch),
                    observed_counts=monitor.observed_counts(index),
                    max_offers=self.max_offers,
                )
            else:
                event = script[step]
                if event[0] == "refused":
                    post = None
                else:
                    _, _, worker_id, tags, timestamp, tagger = event
                    post = Post(frozenset(tags), timestamp=float(timestamp), tagger=tagger)
                    task.claim(worker_id)
                    task.complete(post)
            if post is None:
                task.expire()
                unfilled += 1
                self.strategy.notify_refusal(index)
                events.append(["refused", index])
                continue
            self.ledger.pay(task.task_id, task.worker_id or "?", task.reward)
            spent += task.reward
            completed += 1
            self._counts[index] += 1
            self._bought[index].append(post)
            self.strategy.update(index, post)
            monitor.observe_batch(((index, post),))
            if per_post_stopping:
                self._drain_and_retire()
            events.append(
                ["done", index, task.worker_id, sorted(post.tags), post.timestamp, post.tagger]
            )
        if not per_post_stopping:
            # engine fast path: one vectorized stability update per epoch
            self._drain_and_retire()
        # Withdraw anything still OPEN so abandoned tasks never linger on
        # the board (a no-op in the built-in loop, which settles every
        # task inline, but load-bearing for external task feeds).
        withdrawn = self.board.expire_open()
        if telemetry.enabled:
            telemetry.observe(
                "campaign.epoch", (time.perf_counter() - epoch_started) * 1000.0
            )
            telemetry.count("campaign.epochs")
            telemetry.count("campaign.published", published)
            telemetry.count("campaign.completed", completed)
            if unfilled:
                telemetry.count("campaign.unfilled", unfilled)
            telemetry.count("campaign.spent", spent)
            telemetry.gauge("campaign.budget_remaining", self.ledger.remaining)
        report = EpochReport(
            epoch=epoch,
            published=published,
            completed=completed,
            unfilled=unfilled,
            spent=spent,
            observed_stable=len(self._stopped),
            withdrawn=withdrawn,
            task_counts={
                state.value: count
                for state, count in self.board.counts_by_state().items()
            },
        )
        self._reports.append(report)
        self._journal.append(events)
        self._epoch += 1
        if published == 0:
            self._finished = True
        return report

    def finish(self) -> CampaignResult:
        """Package the campaign's final state (callable at any epoch)."""
        assert self.ledger.reconcile()
        return CampaignResult(
            reports=list(self._reports),
            final_counts=self._counts.copy(),
            bought_posts=[list(posts) for posts in self._bought],
            ledger=self.ledger,
            board=self.board,
            stopped_resources=set(self._stopped),
        )

    def run(self, max_epochs: int = 100) -> CampaignResult:
        """Run epochs until the budget is gone or nothing is proposable.

        Args:
            max_epochs: Hard stop on campaign length (counted from epoch
                0, so a resumed campaign runs at most the remainder).

        Returns:
            The final :class:`CampaignResult`.
        """
        self.start()
        while self._epoch < max_epochs:
            if self.step_epoch() is None:
                break
        return self.finish()
