"""Reward accounting (the paper's Fig 2, step 4).

The ledger tracks the campaign budget and per-worker earnings.  Every
payout is recorded as an immutable transaction so a campaign's spending
is fully auditable — the experiments' "budget spent" numbers reconcile
against the ledger by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.errors import BudgetError

__all__ = ["Payout", "RewardLedger"]


@dataclass(frozen=True)
class Payout:
    """One reward payment.

    Attributes:
        task_id: The completed task being paid.
        worker_id: The paid worker.
        amount: Reward units transferred.
    """

    task_id: int
    worker_id: str
    amount: int


class RewardLedger:
    """Budgeted reward accounting with an append-only transaction log.

    Args:
        budget: Total reward units available to the campaign.
    """

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise BudgetError(f"budget must be non-negative, got {budget}")
        self._budget = budget
        self._spent = 0
        self._payouts: list[Payout] = []
        self._balances: dict[str, int] = {}
        self._obs = obs.get()

    @property
    def budget(self) -> int:
        """The campaign's total budget."""
        return self._budget

    @property
    def spent(self) -> int:
        """Reward units paid out so far."""
        return self._spent

    @property
    def remaining(self) -> int:
        """Unspent reward units."""
        return self._budget - self._spent

    def can_afford(self, amount: int) -> bool:
        """Whether ``amount`` more units fit in the budget."""
        return amount <= self.remaining

    def pay(self, task_id: int, worker_id: str, amount: int) -> Payout:
        """Record a payout.

        Raises:
            BudgetError: If the payout would overdraw the budget or the
                amount is not positive.
        """
        if amount < 1:
            raise BudgetError(f"payout must be >= 1 unit, got {amount}")
        if not self.can_afford(amount):
            raise BudgetError(
                f"payout of {amount} exceeds remaining budget {self.remaining}"
            )
        payout = Payout(task_id=task_id, worker_id=worker_id, amount=amount)
        self._payouts.append(payout)
        self._spent += amount
        self._balances[worker_id] = self._balances.get(worker_id, 0) + amount
        telemetry = self._obs
        if telemetry.enabled:
            telemetry.count("ledger.payouts")
            telemetry.count("ledger.units_paid", amount)
        return payout

    def balance_of(self, worker_id: str) -> int:
        """Total earnings of one worker."""
        return self._balances.get(worker_id, 0)

    @property
    def payouts(self) -> tuple[Payout, ...]:
        """The full transaction log, in payment order."""
        return tuple(self._payouts)

    def reconcile(self) -> bool:
        """Check internal consistency (log vs aggregates)."""
        return (
            sum(p.amount for p in self._payouts) == self._spent
            and sum(self._balances.values()) == self._spent
            and self._spent <= self._budget
        )
