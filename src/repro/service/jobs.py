"""Post-task jobs and the job board (the paper's Fig 2, steps 1–2).

The paper's system sketch: an incentive allocation strategy decides which
resources need posts, the system publishes *post tasks* (vacant jobs) to
a crowd, taggers claim and complete them, and rewards are paid out.

:class:`PostTask` is one such job with a small lifecycle
(``OPEN -> CLAIMED -> COMPLETED`` or ``-> EXPIRED``); :class:`JobBoard`
stores and indexes them.  The board is deliberately dumb — policy lives
in the campaign and the strategies.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.core.errors import AllocationError
from repro.core.posts import Post

__all__ = ["TaskState", "PostTask", "JobBoard"]


class TaskState(enum.Enum):
    """Lifecycle of a post task."""

    OPEN = "open"
    CLAIMED = "claimed"
    COMPLETED = "completed"
    EXPIRED = "expired"


@dataclass
class PostTask:
    """One vacant tagging job.

    Attributes:
        task_id: Board-unique identifier.
        resource_index: The resource to be tagged.
        reward: Reward units paid on completion (1 in the paper's model).
        state: Current lifecycle state.
        worker_id: The claiming worker, once claimed.
        result: The submitted post, once completed.
    """

    task_id: int
    resource_index: int
    reward: int = 1
    state: TaskState = TaskState.OPEN
    worker_id: str | None = None
    result: Post | None = None

    def claim(self, worker_id: str) -> None:
        """Move ``OPEN -> CLAIMED``.

        Raises:
            AllocationError: If the task is not open.
        """
        if self.state is not TaskState.OPEN:
            raise AllocationError(f"task {self.task_id} is {self.state.value}, not open")
        self.state = TaskState.CLAIMED
        self.worker_id = worker_id

    def complete(self, post: Post) -> None:
        """Move ``CLAIMED -> COMPLETED`` with the submitted post.

        Raises:
            AllocationError: If the task was never claimed.
        """
        if self.state is not TaskState.CLAIMED:
            raise AllocationError(
                f"task {self.task_id} is {self.state.value}, not claimed"
            )
        self.state = TaskState.COMPLETED
        self.result = post

    def expire(self) -> None:
        """Withdraw an open or claimed task (end of campaign epoch)."""
        if self.state in (TaskState.COMPLETED, TaskState.EXPIRED):
            raise AllocationError(f"task {self.task_id} already {self.state.value}")
        self.state = TaskState.EXPIRED


class JobBoard:
    """Stores post tasks and serves open ones to workers.

    The board preserves publication order — workers browsing it see the
    oldest open jobs first, like a real task marketplace.
    """

    def __init__(self) -> None:
        self._tasks: dict[int, PostTask] = {}
        self._ids = itertools.count()

    def publish(self, resource_index: int, reward: int = 1) -> PostTask:
        """Create and list a new open task.

        Raises:
            AllocationError: For non-positive rewards.
        """
        if reward < 1:
            raise AllocationError(f"reward must be >= 1 unit, got {reward}")
        task = PostTask(task_id=next(self._ids), resource_index=resource_index, reward=reward)
        self._tasks[task.task_id] = task
        return task

    def get(self, task_id: int) -> PostTask:
        """Look a task up by id.

        Raises:
            KeyError: If unknown.
        """
        return self._tasks[task_id]

    def open_tasks(self) -> list[PostTask]:
        """All open tasks in publication order."""
        return [t for t in self._tasks.values() if t.state is TaskState.OPEN]

    def expire_open(self) -> int:
        """Expire every open task; return how many were withdrawn."""
        count = 0
        for task in self._tasks.values():
            if task.state is TaskState.OPEN:
                task.expire()
                count += 1
        return count

    def completed_tasks(self) -> list[PostTask]:
        """All completed tasks in publication order."""
        return [t for t in self._tasks.values() if t.state is TaskState.COMPLETED]

    def __len__(self) -> int:
        return len(self._tasks)

    def counts_by_state(self) -> dict[TaskState, int]:
        """Histogram of task states (for campaign reports)."""
        histogram = {state: 0 for state in TaskState}
        for task in self._tasks.values():
            histogram[task.state] += 1
        return histogram
