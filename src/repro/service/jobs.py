"""Post-task jobs and the job board (the paper's Fig 2, steps 1–2).

The paper's system sketch: an incentive allocation strategy decides which
resources need posts, the system publishes *post tasks* (vacant jobs) to
a crowd, taggers claim and complete them, and rewards are paid out.

:class:`PostTask` is one such job with a small lifecycle
(``OPEN -> CLAIMED -> COMPLETED`` or ``-> EXPIRED``); :class:`JobBoard`
stores and indexes them.  The board is deliberately dumb — policy lives
in the campaign and the strategies.

The board keeps one id-set per state, maintained incrementally by the
task transitions themselves, so :meth:`JobBoard.open_tasks`,
:meth:`JobBoard.completed_tasks` and :meth:`JobBoard.counts_by_state`
cost ``O(tasks in that state)`` / ``O(1)`` instead of scanning every
task ever published — the difference between a report query and a full
table scan once a long-running campaign server has pushed millions of
tasks through one board.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.errors import AllocationError
from repro.core.posts import Post

__all__ = ["TaskState", "PostTask", "JobBoard"]


class TaskState(enum.Enum):
    """Lifecycle of a post task."""

    OPEN = "open"
    CLAIMED = "claimed"
    COMPLETED = "completed"
    EXPIRED = "expired"


@dataclass
class PostTask:
    """One vacant tagging job.

    Attributes:
        task_id: Board-unique identifier.
        resource_index: The resource to be tagged.
        reward: Reward units paid on completion (1 in the paper's model).
        state: Current lifecycle state.
        worker_id: The claiming worker, once claimed.
        result: The submitted post, once completed.
    """

    task_id: int
    resource_index: int
    reward: int = 1
    state: TaskState = TaskState.OPEN
    worker_id: str | None = None
    result: Post | None = None
    _board: "JobBoard | None" = field(default=None, repr=False, compare=False)

    def _move(self, new_state: TaskState) -> None:
        old = self.state
        self.state = new_state
        if self._board is not None:
            self._board._transitioned(self.task_id, old, new_state)

    def claim(self, worker_id: str) -> None:
        """Move ``OPEN -> CLAIMED``.

        Raises:
            AllocationError: If the task is not open.
        """
        if self.state is not TaskState.OPEN:
            raise AllocationError(f"task {self.task_id} is {self.state.value}, not open")
        self._move(TaskState.CLAIMED)
        self.worker_id = worker_id

    def complete(self, post: Post) -> None:
        """Move ``CLAIMED -> COMPLETED`` with the submitted post.

        Raises:
            AllocationError: If the task was never claimed.
        """
        if self.state is not TaskState.CLAIMED:
            raise AllocationError(
                f"task {self.task_id} is {self.state.value}, not claimed"
            )
        self._move(TaskState.COMPLETED)
        self.result = post

    def expire(self) -> None:
        """Withdraw an open or claimed task (end of campaign epoch)."""
        if self.state in (TaskState.COMPLETED, TaskState.EXPIRED):
            raise AllocationError(f"task {self.task_id} already {self.state.value}")
        self._move(TaskState.EXPIRED)


class JobBoard:
    """Stores post tasks and serves open ones to workers.

    The board preserves publication order — workers browsing it see the
    oldest open jobs first, like a real task marketplace.  (Task ids are
    a monotone counter, so sorting a state's id-set recovers publication
    order without touching the full task table.)
    """

    def __init__(self) -> None:
        self._tasks: dict[int, PostTask] = {}
        self._ids = itertools.count()
        self._by_state: dict[TaskState, set[int]] = {state: set() for state in TaskState}

    def _transitioned(self, task_id: int, old: TaskState, new: TaskState) -> None:
        """Keep the per-state indexes in sync (called by the task itself)."""
        self._by_state[old].discard(task_id)
        self._by_state[new].add(task_id)

    def publish(self, resource_index: int, reward: int = 1) -> PostTask:
        """Create and list a new open task.

        Raises:
            AllocationError: For non-positive rewards.
        """
        if reward < 1:
            raise AllocationError(f"reward must be >= 1 unit, got {reward}")
        task = PostTask(
            task_id=next(self._ids),
            resource_index=resource_index,
            reward=reward,
            _board=self,
        )
        self._tasks[task.task_id] = task
        self._by_state[TaskState.OPEN].add(task.task_id)
        return task

    def get(self, task_id: int) -> PostTask:
        """Look a task up by id.

        Raises:
            KeyError: If unknown.
        """
        return self._tasks[task_id]

    def _in_state(self, state: TaskState) -> list[PostTask]:
        return [self._tasks[task_id] for task_id in sorted(self._by_state[state])]

    def open_tasks(self) -> list[PostTask]:
        """All open tasks in publication order."""
        return self._in_state(TaskState.OPEN)

    def expire_open(self) -> int:
        """Expire every open task; return how many were withdrawn."""
        open_ids = sorted(self._by_state[TaskState.OPEN])
        for task_id in open_ids:
            self._tasks[task_id].expire()
        return len(open_ids)

    def completed_tasks(self) -> list[PostTask]:
        """All completed tasks in publication order."""
        return self._in_state(TaskState.COMPLETED)

    def __len__(self) -> int:
        return len(self._tasks)

    def counts_by_state(self) -> dict[TaskState, int]:
        """Histogram of task states (for campaign reports) — ``O(1)``."""
        return {state: len(ids) for state, ids in self._by_state.items()}
