"""The incentive-tagging service prototype (the paper's Fig 2 / Section VI).

The paper closes by promising "a system prototype ... to support
incentive-based tagging"; this package is that prototype in simulation:
a job board (:mod:`repro.service.jobs`), a budgeted reward ledger
(:mod:`repro.service.ledger`), a simulated crowd with topical preferences
(:mod:`repro.service.workers`), and the epoch-driven campaign loop with
online adaptive stopping (:mod:`repro.service.campaign`).
"""

from repro.service.campaign import CampaignResult, EpochReport, IncentiveCampaign
from repro.service.jobs import JobBoard, PostTask, TaskState
from repro.service.ledger import Payout, RewardLedger
from repro.service.workers import SimulatedWorker, WorkerPool

__all__ = [
    "CampaignResult",
    "EpochReport",
    "IncentiveCampaign",
    "JobBoard",
    "Payout",
    "PostTask",
    "RewardLedger",
    "SimulatedWorker",
    "TaskState",
    "WorkerPool",
]
