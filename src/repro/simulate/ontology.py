"""An ODP-like topic hierarchy and tree-based ground-truth similarity.

The paper evaluates resource–resource similarity rankings against the
Open Directory Project: two resources are "truly" similar when their ODP
categories are close in the hierarchy.  We substitute a two-level
taxonomy (root → domain → subtopic leaf) built from
:data:`repro.simulate.vocab.SEED_TAXONOMY` and score category closeness
with **Wu–Palmer similarity**

    ``wp(a, b) = 2 · depth(lca(a, b)) / (depth(a) + depth(b))``

which is 1 for identical leaves, 0.5 for siblings within a domain and 0
across domains.  Resources with several topical aspects are compared by
the expected Wu–Palmer similarity under their aspect weights, giving the
continuous ground-truth scores Fig 7 ranks against.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.errors import DataModelError
from repro.simulate.vocab import SEED_TAXONOMY

__all__ = ["TopicHierarchy", "aspect_similarity", "pairwise_ground_truth"]

CategoryPath = tuple[str, ...]


@dataclass(frozen=True)
class TopicHierarchy:
    """A rooted category tree with Wu–Palmer similarity.

    Paths are tuples from the root downward, e.g.
    ``("science", "physics")``; the empty tuple is the root.

    Attributes:
        leaves: All leaf paths, in taxonomy order.
    """

    leaves: tuple[CategoryPath, ...]

    @classmethod
    def from_taxonomy(
        cls, taxonomy: dict[str, dict[str, list[str]]] | None = None
    ) -> TopicHierarchy:
        """Build the hierarchy from a seed taxonomy (default: the bundled one)."""
        taxonomy = taxonomy if taxonomy is not None else SEED_TAXONOMY
        leaves: list[CategoryPath] = []
        for domain, subtopics in taxonomy.items():
            for leaf in subtopics:
                if leaf.startswith("_"):
                    continue
                leaves.append((domain, leaf))
        if not leaves:
            raise DataModelError("taxonomy has no leaves")
        return cls(leaves=tuple(leaves))

    # ------------------------------------------------------------------

    def __contains__(self, path: object) -> bool:
        return path in self.leaves

    def validate(self, path: CategoryPath) -> None:
        """Raise if ``path`` is not a known leaf.

        Raises:
            DataModelError: For unknown paths.
        """
        if path not in self.leaves:
            raise DataModelError(f"unknown category path: {path!r}")

    @property
    def domains(self) -> tuple[str, ...]:
        """Distinct top-level domains, in order of first appearance."""
        seen: dict[str, None] = {}
        for path in self.leaves:
            seen.setdefault(path[0], None)
        return tuple(seen)

    def leaves_of(self, domain: str) -> tuple[CategoryPath, ...]:
        """All leaf paths under ``domain``."""
        return tuple(path for path in self.leaves if path[0] == domain)

    # ------------------------------------------------------------------

    @staticmethod
    def wu_palmer(a: CategoryPath, b: CategoryPath) -> float:
        """Wu–Palmer similarity of two category paths.

        The root has depth 0, so paths in different domains score 0 and
        identical paths score 1.

        Args:
            a: Category path (root first).
            b: Category path (root first).

        Returns:
            Similarity in ``[0, 1]``.
        """
        if not a or not b:
            raise DataModelError("category paths must be non-empty")
        lca_depth = 0
        for part_a, part_b in zip(a, b):
            if part_a != part_b:
                break
            lca_depth += 1
        return 2.0 * lca_depth / (len(a) + len(b))


def aspect_similarity(
    aspects_a: Iterable[tuple[CategoryPath, float]],
    aspects_b: Iterable[tuple[CategoryPath, float]],
) -> float:
    """Expected Wu–Palmer similarity under two aspect mixtures.

    A resource about 70% physics / 30% java compared against a pure
    physics resource scores ``0.7·1 + 0.3·0 = 0.7`` — the continuous
    ground truth the Fig 7 ranking accuracy is measured against.

    Args:
        aspects_a: Pairs ``(leaf path, weight)``; weights should sum to 1.
        aspects_b: Same for the other resource.

    Returns:
        Weighted average Wu–Palmer similarity in ``[0, 1]``.
    """
    aspects_a = list(aspects_a)
    aspects_b = list(aspects_b)
    if not aspects_a or not aspects_b:
        raise DataModelError("aspect lists must be non-empty")
    total = 0.0
    for path_a, weight_a in aspects_a:
        for path_b, weight_b in aspects_b:
            total += weight_a * weight_b * TopicHierarchy.wu_palmer(path_a, path_b)
    return total


def pairwise_ground_truth(
    aspect_sets: Sequence[Sequence[tuple[CategoryPath, float]]],
) -> list[tuple[int, int, float]]:
    """Ground-truth similarity for every resource pair.

    Args:
        aspect_sets: Aspect mixture per resource.

    Returns:
        Triples ``(i, j, similarity)`` for all ``i < j``.
    """
    results: list[tuple[int, int, float]] = []
    for i in range(len(aspect_sets)):
        for j in range(i + 1, len(aspect_sets)):
            results.append((i, j, aspect_similarity(aspect_sets[i], aspect_sets[j])))
    return results
