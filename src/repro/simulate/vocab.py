"""Synthetic tag vocabulary: a curated topic taxonomy plus filler tags.

The del.icio.us corpus is unavailable, so the generator needs a believable
tag universe.  This module provides one: eight top-level domains, each
with three or four subtopics (the *leaves* resources attach to), where
every leaf carries a pool of topical tags — a curated core (so case-study
tables read like the paper's: "physics", "java", "video") padded with
derived tags ("physics-tutorial", "java-blog") up to a configurable pool
size.

Two further pools model tagger noise:

* :data:`GENERAL_TAGS` — cross-topic filler ("cool", "toread", ...) every
  resource attracts some mass of;
* :data:`PERSONAL_TAGS` — tagger-private vocabulary ("todo", "later"),
  occasionally appended to posts regardless of the resource.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SEED_TAXONOMY",
    "GENERAL_TAGS",
    "PERSONAL_TAGS",
    "TAG_SUFFIXES",
    "leaf_tag_pool",
    "domain_tag_pool",
    "zipf_weights",
]

SEED_TAXONOMY: dict[str, dict[str, list[str]]] = {
    "programming": {
        "_domain": ["programming", "code", "development", "software"],
        "java": ["java", "jvm", "eclipse", "servlets", "spring", "applets", "jdk", "swing"],
        "python": ["python", "django", "scripting", "numpy", "pip", "flask", "jupyter"],
        "webdev": ["webdesign", "css", "html", "javascript", "ajax", "dom", "frontend"],
    },
    "science": {
        "_domain": ["science", "research", "education", "learning"],
        "physics": ["physics", "mechanics", "quantum", "optics", "relativity", "energy",
                    "experiments", "simulation"],
        "astronomy": ["astronomy", "space", "telescope", "planets", "stars", "nasa", "cosmos"],
        "biology": ["biology", "genetics", "evolution", "cells", "dna", "ecology", "species"],
    },
    "media": {
        "_domain": ["media", "digital", "multimedia", "content"],
        "video-editing": ["video", "editing", "encoder", "codecs", "effects", "render",
                          "timeline", "convert"],
        "video-sharing": ["video", "sharing", "streaming", "clips", "upload", "channels",
                          "viral", "watch"],
        "photo-editing": ["photo", "editing", "filters", "retouch", "layers", "crop",
                          "exposure", "raw"],
        "photo-sharing": ["photo", "sharing", "gallery", "albums", "pictures", "upload",
                          "slideshow", "prints"],
    },
    "sports": {
        "_domain": ["sports", "scores", "teams", "league"],
        "football": ["football", "nfl", "quarterback", "touchdown", "playoffs", "draft"],
        "basketball": ["basketball", "nba", "dunk", "court", "finals", "rookie"],
        "tennis": ["tennis", "atp", "racket", "grandslam", "wimbledon", "serve"],
    },
    "news": {
        "_domain": ["news", "daily", "press", "headlines"],
        "politics": ["politics", "election", "policy", "government", "senate", "campaign"],
        "technews": ["technology", "startups", "gadgets", "internet", "web2.0", "innovation"],
        "architecture": ["architecture", "buildings", "design", "urban", "construction",
                         "skyscraper"],
    },
    "music": {
        "_domain": ["music", "audio", "listening", "songs"],
        "rock": ["rock", "guitar", "bands", "concert", "indie", "vinyl"],
        "jazz": ["jazz", "saxophone", "improvisation", "bebop", "swing-music", "quartet"],
        "electronic": ["electronic", "synth", "techno", "dj", "remix", "ambient"],
    },
    "travel": {
        "_domain": ["travel", "trips", "tourism", "vacation"],
        "destinations": ["destinations", "cities", "beaches", "landmarks", "maps", "guides"],
        "flights": ["flights", "airlines", "airports", "booking", "fares", "miles"],
        "hotels": ["hotels", "hostels", "resorts", "reviews", "booking", "rooms"],
    },
    "cooking": {
        "_domain": ["cooking", "food", "kitchen", "recipes"],
        "baking": ["baking", "bread", "pastry", "oven", "dough", "cakes"],
        "drinks": ["drinks", "coffee", "cocktails", "wine", "brewing", "tea"],
        "vegetarian": ["vegetarian", "vegan", "salads", "greens", "tofu", "plantbased"],
    },
}
"""Domain -> {subtopic -> curated tags}; the ``_domain`` key holds tags
shared by every subtopic of the domain."""

GENERAL_TAGS: list[str] = [
    "cool", "interesting", "web", "toread", "reference", "useful", "fun",
    "free", "online", "imported", "bookmarks", "tools", "blog", "resources",
    "list", "archive", "search", "howto",
]
"""Cross-topic filler tags (ordered by intended popularity)."""

PERSONAL_TAGS: list[str] = [
    "todo", "later", "temp", "stuff", "misc", "saved", "check", "own",
    "forwork", "forhome", "weekly", "someday",
]
"""Tagger-private vocabulary, attached to posts independently of topic."""

TAG_SUFFIXES: list[str] = [
    "guide", "tutorial", "wiki", "howto", "tools", "news", "blog",
    "reference", "lab", "hub", "archive", "daily", "online", "forum",
]
"""Suffixes used to derive filler topical tags (e.g. ``physics-tutorial``)."""


def zipf_weights(count: int, exponent: float = 0.85) -> np.ndarray:
    """Normalised Zipf-like weights ``w_r ∝ 1 / (r + 1)^exponent``.

    Tag popularity within a pool follows a power law (the paper's
    Fig 1(a) shows the familiar steep head); ``exponent`` tunes how
    concentrated the head is.

    Args:
        count: Number of ranks.
        exponent: Power-law exponent (``> 0``).

    Returns:
        A ``float64`` array summing to 1.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def leaf_tag_pool(domain: str, leaf: str, pool_size: int = 20) -> list[str]:
    """The topical tag pool of a leaf, curated core first.

    Curated tags come straight from :data:`SEED_TAXONOMY`; the pool is
    padded to ``pool_size`` with derived tags ``{leaf}-{suffix}``.

    Args:
        domain: Top-level domain name.
        leaf: Subtopic name within the domain.
        pool_size: Desired pool size (padding stops at the suffix pool's
            end, so very large requests return fewer tags).

    Returns:
        Distinct tags, most popular first.

    Raises:
        KeyError: If the domain or leaf is not in the taxonomy.
    """
    curated = list(SEED_TAXONOMY[domain][leaf])
    seen = set(curated)
    for suffix in TAG_SUFFIXES:
        if len(curated) >= pool_size:
            break
        derived = f"{leaf}-{suffix}"
        if derived not in seen:
            curated.append(derived)
            seen.add(derived)
    return curated[:pool_size]


def domain_tag_pool(domain: str) -> list[str]:
    """Tags shared by every subtopic of ``domain``."""
    return list(SEED_TAXONOMY[domain]["_domain"])
