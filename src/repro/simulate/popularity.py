"""Popularity models: how many posts each resource attracts, and when.

Fig 1(b) shows the defining skew of collaborative tagging: millions of
resources with a single post, a handful with tens of thousands.  We model
per-resource post counts with bounded Pareto draws and the "January"
initial share with a Beta distribution whose mass near zero produces the
paper's large under-tagged population (>20% of resources with ≤ 10
initial posts) while its tail produces the already-over-tagged popular
head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataModelError

__all__ = ["PopularityConfig", "draw_total_posts", "draw_initial_share", "heavy_tail_counts"]


@dataclass(frozen=True)
class PopularityConfig:
    """Parameters of the post-count and initial-share distributions.

    Attributes:
        pareto_alpha: Tail exponent of the total-post-count Pareto draw
            (smaller = heavier tail = more extreme popularity skew).
        min_posts: Lower bound of total posts per resource.  Experiment
            corpora keep this high enough that sequences can reach their
            stable points; universe corpora set it to 1.
        max_posts: Upper cap on total posts per resource.
        initial_share_alpha: Beta ``a`` of the initial (pre-cutoff) share.
        initial_share_beta: Beta ``b`` of the initial share.
    """

    pareto_alpha: float = 1.9
    min_posts: int = 90
    max_posts: int = 1500
    initial_share_alpha: float = 0.55
    initial_share_beta: float = 1.7

    def __post_init__(self) -> None:
        if self.pareto_alpha <= 0:
            raise DataModelError("pareto_alpha must be positive")
        if not 1 <= self.min_posts <= self.max_posts:
            raise DataModelError("need 1 <= min_posts <= max_posts")
        if self.initial_share_alpha <= 0 or self.initial_share_beta <= 0:
            raise DataModelError("Beta parameters must be positive")


def draw_total_posts(
    n: int, rng: np.random.Generator, config: PopularityConfig | None = None
) -> np.ndarray:
    """Total year post counts per resource (bounded Pareto).

    Args:
        n: Number of resources.
        rng: Source of randomness.
        config: Distribution parameters.

    Returns:
        ``int64`` array in ``[min_posts, max_posts]``.
    """
    config = config or PopularityConfig()
    uniforms = rng.random(n)
    raw = config.min_posts * uniforms ** (-1.0 / config.pareto_alpha)
    return np.minimum(raw, config.max_posts).astype(np.int64)


def draw_initial_share(
    n: int, rng: np.random.Generator, config: PopularityConfig | None = None
) -> np.ndarray:
    """Fraction of each resource's posts that fall before the cutoff.

    Returns:
        ``float64`` array in ``(0, 1)``.
    """
    config = config or PopularityConfig()
    return rng.beta(config.initial_share_alpha, config.initial_share_beta, size=n)


def heavy_tail_counts(
    n: int,
    rng: np.random.Generator,
    *,
    alpha: float = 1.1,
    cap: int = 20000,
) -> np.ndarray:
    """Post counts for a full "universe" corpus (Fig 1(b) reproduction).

    Pure discrete power law starting at 1 post: most resources get a
    single post, the head gets thousands — the log-log histogram of
    these counts is a straight descending line like the paper's.

    Args:
        n: Number of resources.
        rng: Source of randomness.
        alpha: Tail exponent (the paper's empirical slope is near 1).
        cap: Maximum posts per resource.

    Returns:
        ``int64`` array in ``[1, cap]``.
    """
    if alpha <= 0:
        raise DataModelError("alpha must be positive")
    uniforms = rng.random(n)
    raw = np.floor(uniforms ** (-1.0 / alpha))
    return np.minimum(raw, cap).astype(np.int64)
