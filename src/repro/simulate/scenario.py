"""Scenario presets: ready-made corpora for tests, examples and benchmarks.

Every preset is deterministic in its seed and returns a
:class:`~repro.simulate.generator.GeneratedCorpus` (dataset + latent
ground truth).  The preset *builders* now live in
:mod:`repro.packs.families`, registered on the scenario-pack registry
(:data:`repro.packs.PACKS`) alongside the newer workload families; the
functions here are thin back-compat wrappers that delegate to them, so
every corpus stays byte-identical with its pre-registry self.  The main
presets:

* :func:`tiny_scenario` / :func:`small_scenario` — fast corpora for tests
  and documentation examples (packs ``tiny`` / ``small``);
* :func:`paper_scenario` — the Section V-A analogue: resources are
  *pre-filtered to those whose full sequences reach stability* under the
  stringent ``(ω_s, τ_s) = (20, 0.9999)``, exactly like the paper's
  5,000-URL selection (pack ``paper-default``);
* :func:`universe_scenario` — the heavy-tailed population behind
  Fig 1(b) and the Section I statistics (pack ``universe``);
* :func:`figure1a_scenario` — a single Google-Earth-like resource whose
  tag trajectories reproduce Fig 1(a) (pack ``figure1a``);
* :func:`case_study_scenario` — the engineered subjects and resource
  pools behind Tables VI and VII (stays here: it returns a
  :class:`CaseStudyScenario`, not a bare corpus).

The delegation imports are lazy: :mod:`repro.packs` pulls in
:mod:`repro.api`, which must stay importable without this module being
fully initialised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import TaggingDataset
from repro.core.resources import Resource, ResourceSet
from repro.simulate.generator import (
    CorpusConfig,
    GeneratedCorpus,
    generate_posts_for_model,
)
from repro.simulate.ontology import CategoryPath, TopicHierarchy
from repro.simulate.resource_models import (
    AspectConfig,
    ResourceModel,
    build_resource_model,
    mixture_distribution,
)
from repro.simulate.taggers import TaggerBehavior

__all__ = [
    "tiny_scenario",
    "small_scenario",
    "paper_scenario",
    "universe_scenario",
    "figure1a_scenario",
    "CaseStudySubject",
    "CaseStudyScenario",
    "case_study_scenario",
]


def paper_scenario(
    n: int = 600,
    seed: int = 0,
    *,
    overgeneration: float = 1.8,
    config: CorpusConfig | None = None,
) -> GeneratedCorpus:
    """The Section V-A experiment corpus (scaled) — pack ``paper-default``.

    Generates ``overgeneration * n`` resources and keeps the first ``n``
    that reach stability under the stringent preparation parameters —
    the same selection the paper applies to its del.icio.us dump.  The
    paper runs on 5,000 resources; the default here is laptop-sized, and
    any scale is one argument away.

    Args:
        n: Number of qualifying resources to keep.
        seed: Corpus seed.
        overgeneration: How many candidate resources to generate per
            kept resource (the default stability pass rate is ~65%).
        config: Optional base config; its ``n_resources`` is overridden.

    Returns:
        A stability-filtered :class:`GeneratedCorpus` of exactly ``n``
        resources.
    """
    from repro.packs.families import paper_corpus

    return paper_corpus(n=n, seed=seed, overgeneration=overgeneration, config=config)


def tiny_scenario(seed: int = 0) -> GeneratedCorpus:
    """A ~25-resource corpus for unit tests and doc snippets — pack ``tiny``."""
    from repro.packs.families import tiny_corpus

    return tiny_corpus(seed=seed)


def small_scenario(seed: int = 0, n: int = 80) -> GeneratedCorpus:
    """A stability-filtered small corpus for integration tests — pack ``small``."""
    from repro.packs.families import small_corpus

    return small_corpus(seed=seed, n=n)


def universe_scenario(seed: int = 0, n: int = 5000) -> GeneratedCorpus:
    """The heavy-tailed population of Fig 1(b) — pack ``universe``.

    Most resources receive a single post; the head receives thousands.
    Use :meth:`TaggingDataset.posts_distribution` for the log-log
    histogram.
    """
    from repro.packs.families import universe_corpus

    return universe_corpus(seed=seed, n=n)


def figure1a_scenario(seed: int = 0, num_posts: int = 500) -> GeneratedCorpus:
    """A single Google-Earth-like resource (Fig 1(a)) — pack ``figure1a``.

    The latent distribution is hand-set so the five tracked tags
    (google, maps, earth, software, travel) dominate, with a long tail
    of minor tags; 500 posts reproduce the convergence picture.
    """
    from repro.packs.families import figure1a_corpus

    return figure1a_corpus(seed=seed, num_posts=num_posts)


# ----------------------------------------------------------------------
# case studies (Tables VI and VII)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CaseStudySubject:
    """One engineered case-study subject.

    Attributes:
        resource_id: Subject's id in the corpus.
        story: Short label of the narrative ("physics-vs-java", ...).
        true_leaf: The leaf the subject is really about.
        bias_leaf: The leaf its early posts wrongly emphasise (``None``
            for the over-popular control subject).
    """

    resource_id: str
    story: str
    true_leaf: CategoryPath
    bias_leaf: CategoryPath | None


@dataclass
class CaseStudyScenario:
    """The Tables VI/VII corpus: subjects, labelled pools, background.

    Attributes:
        corpus: The full corpus (subjects + pools + background).
        subjects: The four engineered subjects, Table VI's first.
        pool_labels: ``resource_id -> leaf path`` for every pool member
            (used to label rows in the rendered tables).
    """

    corpus: GeneratedCorpus
    subjects: list[CaseStudySubject]
    pool_labels: dict[str, CategoryPath] = field(default_factory=dict)


_SUBJECT_SPECS: list[tuple[str, CategoryPath, CategoryPath | None]] = [
    ("physics-vs-java", ("science", "physics"), ("programming", "java")),
    ("video-editing-vs-sharing", ("media", "video-editing"), ("media", "video-sharing")),
    ("architecture-vs-news", ("news", "architecture"), ("news", "technews")),
    ("espn-control", ("sports", "football"), None),
]


def _subject_model(
    story: str,
    true_leaf: CategoryPath,
    bias_leaf: CategoryPath | None,
    rng: np.random.Generator,
    aspects_config: AspectConfig,
    early_count: int,
) -> ResourceModel:
    """Build a subject: true mixture plus (optionally) a biased early one."""
    if bias_leaf is None:
        forced = ((true_leaf, 1.0),)
    else:
        forced = ((true_leaf, 0.7), (bias_leaf, 0.3))
    stem = story.replace("-", "")[:10]
    title = f"{stem}.com"
    specific = [stem, f"{stem}-site"]
    distribution = mixture_distribution(forced, specific, aspects_config, 2.2)
    early = None
    if bias_leaf is not None:
        early = mixture_distribution(
            ((bias_leaf, 0.85), (true_leaf, 0.15)), specific, aspects_config, 2.2
        )
    return ResourceModel(
        resource_id=f"subject-{story}",
        title=title,
        aspects=forced,
        distribution=distribution,
        early_distribution=early,
        early_count=early_count,
    )


def case_study_scenario(seed: int = 0) -> CaseStudyScenario:
    """Build the Tables VI/VII corpus.

    Per subject: ~10 same-leaf pool resources (the *right* answers for
    its top-10 query, sparsely tagged in January so FP helps them), and
    — for biased subjects — ~10 popular bias-leaf resources (the *wrong*
    answers that dominate the January ranking).  A background population
    from unrelated domains completes the corpus.

    The subject's future posts arrive late in the year, so the FC
    baseline (which replays arrival order) spends its budget on the
    popular pools instead — recreating the paper's contrast between the
    FC and FP columns.
    """
    rng = np.random.default_rng(seed)
    hierarchy = TopicHierarchy.from_taxonomy()
    aspects_config = AspectConfig()
    behavior = TaggerBehavior()
    resources = ResourceSet()
    models: list[ResourceModel] = []
    subjects: list[CaseStudySubject] = []
    pool_labels: dict[str, CategoryPath] = {}

    def add_resource(model: ResourceModel, timestamps: np.ndarray) -> None:
        sequence = generate_posts_for_model(model, timestamps, rng, behavior)
        resources.add(
            Resource(
                resource_id=model.resource_id,
                sequence=sequence,
                title=model.title,
                category=model.primary_category,
            )
        )
        models.append(model)

    def pool_timestamps(jan: int, total: int, future_start: float) -> np.ndarray:
        early = np.sort(rng.uniform(0.0, 31.0, size=jan))
        late = np.sort(rng.uniform(future_start, 365.0, size=total - jan))
        return np.concatenate([early, late])

    def pool_member(
        leaf: CategoryPath, tag: str, index: int, jan: int, total: int, future_start: float
    ) -> None:
        model = build_resource_model(
            f"{tag}-{index:02d}",
            hierarchy,
            rng,
            aspects_config,
            forced_aspects=((leaf, 1.0),),
        )
        add_resource(model, pool_timestamps(jan, total, future_start))
        pool_labels[model.resource_id] = leaf

    for story, true_leaf, bias_leaf in _SUBJECT_SPECS:
        control = bias_leaf is None
        jan = 240 if control else int(rng.integers(6, 11))
        total = 520 if control else int(rng.integers(380, 460))
        model = _subject_model(story, true_leaf, bias_leaf, rng, aspects_config, jan)
        # Subject's organic future posts arrive late: free-choosing
        # taggers discover it only at year end.
        add_resource(model, pool_timestamps(jan, total, future_start=200.0))
        subjects.append(
            CaseStudySubject(
                resource_id=model.resource_id,
                story=story,
                true_leaf=true_leaf,
                bias_leaf=bias_leaf,
            )
        )
        # The "right answers": same-leaf resources, under-tagged in January.
        for index in range(10):
            pool_member(
                true_leaf,
                f"pool-{true_leaf[1]}",
                index,
                jan=int(rng.integers(150, 260)) if control else int(rng.integers(4, 14)),
                total=int(rng.integers(320, 420)) if control else int(rng.integers(180, 320)),
                future_start=31.0 if control else 120.0,
            )
        # The "wrong answers": popular, already well-tagged bias-leaf
        # resources whose posts keep flowing all year.
        if bias_leaf is not None:
            for index in range(10):
                pool_member(
                    bias_leaf,
                    f"pool-{bias_leaf[1]}",
                    index,
                    jan=int(rng.integers(120, 260)),
                    total=int(rng.integers(500, 900)),
                    future_start=31.0,
                )

    background_domains = ("music", "travel", "cooking")
    index = 0
    for domain in background_domains:
        for leaf in hierarchy.leaves_of(domain):
            for _ in range(3):
                model = build_resource_model(
                    f"bg-{index:03d}", hierarchy, rng, aspects_config,
                    forced_aspects=((leaf, 1.0),),
                )
                jan = int(rng.integers(10, 60))
                total = jan + int(rng.integers(100, 300))
                add_resource(model, pool_timestamps(jan, total, future_start=31.0))
                index += 1

    config = CorpusConfig(n_resources=len(resources), name="case-study")
    corpus = GeneratedCorpus(
        dataset=TaggingDataset(resources, name="case-study"),
        models=models,
        hierarchy=hierarchy,
        config=config,
    )
    return CaseStudyScenario(corpus=corpus, subjects=subjects, pool_labels=pool_labels)
