"""The corpus generator: models + popularity + taggers → a TaggingDataset.

This is the substitute for the del.icio.us 2007 dump.  For every
resource the generator

1. samples a latent :class:`~repro.simulate.resource_models.ResourceModel`
   from the taxonomy,
2. draws its total post count (Pareto) and initial-share (Beta),
3. places initial posts uniformly before the cutoff day and the rest
   uniformly after it, and
4. synthesises each post from the model through the tagger noise model.

The result is a corpus exhibiting the paper's three key phenomena: rfd
convergence per resource, a skewed post distribution across resources,
and a large under-tagged population at the cutoff.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataset import TaggingDataset
from repro.core.errors import DataModelError
from repro.core.posts import Post, PostSequence
from repro.core.resources import Resource, ResourceSet
from repro.simulate.ontology import TopicHierarchy
from repro.simulate.popularity import (
    PopularityConfig,
    draw_initial_share,
    draw_total_posts,
    heavy_tail_counts,
)
from repro.simulate.resource_models import (
    AspectConfig,
    ResourceModel,
    build_resource_model,
)
from repro.simulate.taggers import TaggerBehavior, generate_post

__all__ = ["CorpusConfig", "GeneratedCorpus", "CorpusGenerator", "generate_posts_for_model"]


@dataclass(frozen=True)
class CorpusConfig:
    """Everything that shapes a synthetic corpus.

    Attributes:
        n_resources: Corpus size.
        year_days: Length of the simulated period.
        cutoff_day: The "January 31st" — posts at or before this time are
            the initial state of every experiment.
        popularity: Post count / initial share distributions.
        aspects: Resource aspect mixture knobs.
        tagger: Crowd noise model.
        name: Dataset label.
    """

    n_resources: int = 200
    year_days: float = 365.0
    cutoff_day: float = 31.0
    popularity: PopularityConfig = field(default_factory=PopularityConfig)
    aspects: AspectConfig = field(default_factory=AspectConfig)
    tagger: TaggerBehavior = field(default_factory=TaggerBehavior)
    name: str = "synthetic-delicious"

    def __post_init__(self) -> None:
        if self.n_resources < 1:
            raise DataModelError("n_resources must be positive")
        if not 0 < self.cutoff_day < self.year_days:
            raise DataModelError("cutoff_day must lie inside the year")


@dataclass
class GeneratedCorpus:
    """A generated dataset plus its ground-truth generating process.

    Attributes:
        dataset: The corpus as a :class:`TaggingDataset`.
        models: Latent models, positionally aligned with the dataset's
            resources (evaluation-side ground truth).
        hierarchy: The taxonomy the models were drawn from.
        config: The generating configuration.
    """

    dataset: TaggingDataset
    models: list[ResourceModel]
    hierarchy: TopicHierarchy
    config: CorpusConfig

    @property
    def cutoff(self) -> float:
        """The corpus' experiment cutoff time."""
        return self.config.cutoff_day

    def subset(self, indices: list[int]) -> GeneratedCorpus:
        """The corpus restricted to the resources at ``indices``."""
        return GeneratedCorpus(
            dataset=self.dataset.subset(indices, name=self.dataset.name),
            models=[self.models[i] for i in indices],
            hierarchy=self.hierarchy,
            config=self.config,
        )


def generate_posts_for_model(
    model: ResourceModel,
    timestamps: np.ndarray,
    rng: np.random.Generator,
    behavior: TaggerBehavior,
) -> PostSequence:
    """Synthesise a full post sequence for one resource.

    When the behaviour's imitation rate is positive, a running tag-count
    table feeds the Pólya-urn dynamic (each post can copy tags already
    popular on the resource).

    Args:
        model: The latent resource model.
        timestamps: Sorted posting times.
        rng: Source of randomness.
        behavior: Crowd noise model.
    """
    counts: dict[str, int] | None = {} if behavior.imitation_rate > 0 else None
    posts = []
    for index, t in enumerate(timestamps):
        post = generate_post(model, index, float(t), rng, behavior, observed_counts=counts)
        if counts is not None:
            for tag in post.tags:
                counts[tag] = counts.get(tag, 0) + 1
        posts.append(post)
    return PostSequence(posts)


class CorpusGenerator:
    """Generates reproducible synthetic corpora.

    Args:
        config: Corpus parameters.
        seed: RNG seed (identical seeds give identical corpora).
    """

    def __init__(self, config: CorpusConfig | None = None, seed: int = 0) -> None:
        self.config = config or CorpusConfig()
        self.seed = seed
        self.hierarchy = TopicHierarchy.from_taxonomy()

    # ------------------------------------------------------------------

    def _timestamps(
        self, total: int, initial: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``initial`` times before the cutoff, the rest after, sorted."""
        config = self.config
        early = rng.uniform(0.0, config.cutoff_day, size=initial)
        late = rng.uniform(
            np.nextafter(config.cutoff_day, config.year_days),
            config.year_days,
            size=total - initial,
        )
        return np.concatenate([np.sort(early), np.sort(late)])

    def generate(
        self,
        *,
        transform_model: Callable[[ResourceModel, int], ResourceModel] | None = None,
        adjust_initials: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    ) -> GeneratedCorpus:
        """Generate the experiment corpus described by the config.

        Args:
            transform_model: Optional ``(model, index) -> model`` hook
                applied before any post is drawn from the model — this is
                how scenario packs cap vocabularies or flatten latent
                distributions.  Must not consume ``rng`` draws if the
                corpus should stay comparable to the un-hooked one.
            adjust_initials: Optional ``(totals, initials) -> initials``
                hook rewriting the per-resource initial (pre-cutoff) post
                counts — budget-constrained seeding packs zero out the
                unseeded population here.  The return value is clipped to
                ``[0, totals]``.
        """
        config = self.config
        rng = np.random.default_rng(self.seed)
        totals = draw_total_posts(config.n_resources, rng, config.popularity)
        shares = draw_initial_share(config.n_resources, rng, config.popularity)
        initials = np.clip(np.round(totals * shares).astype(np.int64), 0, totals)
        if adjust_initials is not None:
            initials = np.clip(
                np.asarray(adjust_initials(totals, initials), dtype=np.int64), 0, totals
            )

        resources = ResourceSet()
        models: list[ResourceModel] = []
        for index in range(config.n_resources):
            model = build_resource_model(
                f"r{index:05d}", self.hierarchy, rng, config.aspects
            )
            if transform_model is not None:
                model = transform_model(model, index)
            timestamps = self._timestamps(int(totals[index]), int(initials[index]), rng)
            sequence = generate_posts_for_model(model, timestamps, rng, config.tagger)
            resources.add(
                Resource(
                    resource_id=model.resource_id,
                    sequence=sequence,
                    title=model.title,
                    category=model.primary_category,
                )
            )
            models.append(model)
        dataset = TaggingDataset(resources, name=config.name)
        return GeneratedCorpus(
            dataset=dataset, models=models, hierarchy=self.hierarchy, config=config
        )

    def generate_universe(self, *, alpha: float = 1.1, cap: int = 20000) -> GeneratedCorpus:
        """Generate a heavy-tailed "universe" corpus (Fig 1(b)).

        Post counts start at 1 (most resources are tagged once) and
        follow a power law; initial shares are not meaningful here, so
        timestamps are simply uniform over the year.
        """
        config = self.config
        rng = np.random.default_rng(self.seed)
        totals = heavy_tail_counts(config.n_resources, rng, alpha=alpha, cap=cap)

        resources = ResourceSet()
        models: list[ResourceModel] = []
        for index in range(config.n_resources):
            model = build_resource_model(
                f"u{index:06d}", self.hierarchy, rng, config.aspects
            )
            timestamps = np.sort(rng.uniform(0.0, config.year_days, size=int(totals[index])))
            sequence = generate_posts_for_model(model, timestamps, rng, config.tagger)
            resources.add(
                Resource(
                    resource_id=model.resource_id,
                    sequence=sequence,
                    title=model.title,
                    category=model.primary_category,
                )
            )
            models.append(model)
        dataset = TaggingDataset(resources, name=f"{config.name}-universe")
        return GeneratedCorpus(
            dataset=dataset,
            models=models,
            hierarchy=self.hierarchy,
            config=replace(config, name=f"{config.name}-universe"),
        )
