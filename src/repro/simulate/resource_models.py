"""Latent resource models: what a resource is "truly about".

Each synthetic resource carries a latent tag distribution — the
probability that a tagger who tags it uses each tag.  The empirical rfd
of a long post sequence converges to (a noisy version of) this
distribution, which is exactly the convergence phenomenon the paper's
stability machinery measures.

A model mixes three sources of tags:

* **topical aspects** — one to three taxonomy leaves with Dirichlet
  weights.  Multi-aspect resources have wider distributions and
  therefore later stable points (the heterogeneity behind Fig 5);
* **general tags** — cross-topic filler mass ("cool", "toread");
* **resource-specific tags** — the resource's own name tokens, which
  never collide across resources.

Models can also carry an *early distribution*: a different mixture used
for the first posts only.  The case studies use this to recreate the
paper's myphysicslab.com story, where early posts described the Java
implementation rather than the physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DataModelError
from repro.simulate.ontology import CategoryPath, TopicHierarchy
from repro.simulate.vocab import (
    GENERAL_TAGS,
    domain_tag_pool,
    leaf_tag_pool,
    zipf_weights,
)

__all__ = ["TagSampler", "ResourceModel", "AspectConfig", "build_resource_model",
           "synthetic_site_name"]

_NAME_SYLLABLES = [
    "zor", "bix", "lum", "tra", "ven", "kai", "pod", "nex", "ril", "sto",
    "mar", "fen", "qua", "dex", "vio", "han", "pel", "cur", "nim", "tor",
]


def synthetic_site_name(rng: np.random.Generator, leaf: str) -> str:
    """A plausible site name rooted in its topic, e.g. ``zorbixphysics.com``.

    Args:
        rng: Source of randomness.
        leaf: The resource's primary subtopic.
    """
    syllables = "".join(rng.choice(_NAME_SYLLABLES) for _ in range(2))
    stem = leaf.split("-")[0]
    return f"{syllables}{stem}.com"


class TagSampler:
    """Weighted sampling of distinct tags from a sparse distribution.

    Precomputes cumulative weights once so that per-post sampling is a
    few ``searchsorted`` calls — the generator draws hundreds of
    thousands of posts.

    Args:
        distribution: ``tag -> probability`` (normalised internally).
    """

    __slots__ = ("tags", "_cumulative")

    def __init__(self, distribution: dict[str, float]) -> None:
        if not distribution:
            raise DataModelError("tag distribution must be non-empty")
        items = sorted(distribution.items(), key=lambda kv: (-kv[1], kv[0]))
        self.tags = tuple(tag for tag, _ in items)
        weights = np.array([max(w, 0.0) for _, w in items], dtype=np.float64)
        total = weights.sum()
        if total <= 0:
            raise DataModelError("tag distribution must have positive mass")
        self._cumulative = np.cumsum(weights / total)

    def sample_distinct(self, count: int, rng: np.random.Generator) -> list[str]:
        """Draw up to ``count`` *distinct* tags (weighted, no replacement).

        Uses rejection on repeated draws; with the concentrated
        distributions we generate, a handful of rounds suffices.  May
        return fewer than ``count`` tags if the support is smaller.
        """
        count = min(count, len(self.tags))
        chosen: dict[str, None] = {}
        # Each round draws a batch; 6 rounds bound the loop even under
        # extreme concentration (then we fall back to the head tags).
        for _ in range(6):
            needed = count - len(chosen)
            if needed <= 0:
                break
            draws = np.searchsorted(self._cumulative, rng.random(needed * 2 + 2))
            for position in draws:
                tag = self.tags[min(int(position), len(self.tags) - 1)]
                chosen.setdefault(tag, None)
                if len(chosen) == count:
                    break
        for tag in self.tags:  # deterministic fallback
            if len(chosen) >= count:
                break
            chosen.setdefault(tag, None)
        return list(chosen)


@dataclass
class ResourceModel:
    """The latent description of one synthetic resource.

    Attributes:
        resource_id: Stable identifier (matches the generated
            :class:`~repro.core.resources.Resource`).
        title: Display name (a synthetic domain name).
        aspects: ``(leaf path, weight)`` pairs, weights summing to 1;
            ground truth for the Fig 7 / case-study evaluations.
        distribution: The latent tag distribution taggers draw from.
        early_distribution: Optional biased distribution for the first
            ``early_count`` posts (case-study scenarios).
        early_count: How many leading posts use the early distribution.
    """

    resource_id: str
    title: str
    aspects: tuple[tuple[CategoryPath, float], ...]
    distribution: dict[str, float]
    early_distribution: dict[str, float] | None = None
    early_count: int = 0

    _sampler: TagSampler | None = field(default=None, init=False, repr=False, compare=False)
    _early_sampler: TagSampler | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def primary_category(self) -> CategoryPath:
        """The heaviest aspect's leaf path."""
        return max(self.aspects, key=lambda pair: pair[1])[0]

    def sampler_for_post(self, post_index: int) -> TagSampler:
        """The sampler for the ``post_index``-th post (0-based).

        Early posts (below :attr:`early_count`) use the early
        distribution when one is set.
        """
        if self.early_distribution is not None and post_index < self.early_count:
            if self._early_sampler is None:
                self._early_sampler = TagSampler(self.early_distribution)
            return self._early_sampler
        if self._sampler is None:
            self._sampler = TagSampler(self.distribution)
        return self._sampler


@dataclass(frozen=True)
class AspectConfig:
    """Knobs controlling resource aspect mixtures.

    Attributes:
        aspect_count_probs: Probability of a resource having 1, 2, 3, ...
            topical aspects.  Multi-aspect resources converge slower.
        topic_mass: Latent probability mass on topical tags.
        general_mass: Mass on cross-topic general tags.
        specific_mass: Mass on the resource's own name tokens.
        leaf_pool_size: Topical tags drawn from each leaf's pool.
        leaf_zipf_exponent: Mean concentration of within-leaf tag
            popularity.
        leaf_zipf_spread: Per-resource exponent jitter: each resource's
            exponent is drawn uniformly from ``mean ± spread``.  This is
            the main source of stable-point heterogeneity (the paper's
            50–200 range): concentrated resources stabilise after few
            posts, flat ones need many.
    """

    aspect_count_probs: tuple[float, ...] = (0.55, 0.30, 0.15)
    topic_mass: float = 0.76
    general_mass: float = 0.10
    specific_mass: float = 0.14
    leaf_pool_size: int = 12
    leaf_zipf_exponent: float = 2.1
    leaf_zipf_spread: float = 0.9

    def __post_init__(self) -> None:
        total = self.topic_mass + self.general_mass + self.specific_mass
        if abs(total - 1.0) > 1e-9:
            raise DataModelError(f"mixture masses must sum to 1, got {total}")
        if abs(sum(self.aspect_count_probs) - 1.0) > 1e-9:
            raise DataModelError("aspect_count_probs must sum to 1")


def _leaf_distribution(
    path: CategoryPath, config: AspectConfig, zipf_exponent: float | None = None
) -> dict[str, float]:
    """Within-leaf tag distribution: leaf tags (80%) + domain tags (20%)."""
    domain, leaf = path
    pool = leaf_tag_pool(domain, leaf, config.leaf_pool_size)
    weights = zipf_weights(len(pool), zipf_exponent or config.leaf_zipf_exponent)
    distribution = {tag: 0.8 * float(w) for tag, w in zip(pool, weights)}
    domain_pool = domain_tag_pool(domain)
    domain_weights = zipf_weights(len(domain_pool), 1.0)
    for tag, w in zip(domain_pool, domain_weights):
        distribution[tag] = distribution.get(tag, 0.0) + 0.2 * float(w)
    return distribution


def mixture_distribution(
    aspects: tuple[tuple[CategoryPath, float], ...],
    specific_tags: list[str],
    config: AspectConfig,
    zipf_exponent: float | None = None,
) -> dict[str, float]:
    """Combine aspects, general filler, and resource-specific tags.

    Args:
        aspects: ``(leaf path, weight)`` pairs summing to 1.
        specific_tags: The resource's own tags (name tokens).
        config: Mixture masses and pool parameters.
        zipf_exponent: Per-resource within-leaf concentration (defaults
            to the config mean).

    Returns:
        A normalised latent tag distribution.
    """
    distribution: dict[str, float] = {}
    for path, weight in aspects:
        for tag, mass in _leaf_distribution(path, config, zipf_exponent).items():
            distribution[tag] = distribution.get(tag, 0.0) + config.topic_mass * weight * mass
    general_weights = zipf_weights(len(GENERAL_TAGS), 1.1)
    for tag, w in zip(GENERAL_TAGS, general_weights):
        distribution[tag] = distribution.get(tag, 0.0) + config.general_mass * float(w)
    if specific_tags:
        share = config.specific_mass / len(specific_tags)
        for tag in specific_tags:
            distribution[tag] = distribution.get(tag, 0.0) + share
    total = sum(distribution.values())
    return {tag: mass / total for tag, mass in distribution.items()}


def build_resource_model(
    resource_id: str,
    hierarchy: TopicHierarchy,
    rng: np.random.Generator,
    config: AspectConfig | None = None,
    *,
    forced_aspects: tuple[tuple[CategoryPath, float], ...] | None = None,
    title: str | None = None,
) -> ResourceModel:
    """Sample a resource model from the taxonomy.

    Args:
        resource_id: Identifier for the resource.
        hierarchy: Leaf universe to draw aspects from.
        rng: Source of randomness.
        config: Mixture knobs (default :class:`AspectConfig`).
        forced_aspects: Fix the aspect mixture instead of sampling
            (case-study scenarios engineer specific resources).
        title: Fix the title instead of synthesising one.

    Returns:
        A fully initialised :class:`ResourceModel` (no early bias; set
        that separately for case-study subjects).
    """
    config = config or AspectConfig()
    if forced_aspects is not None:
        aspects = forced_aspects
        for path, _ in aspects:
            hierarchy.validate(path)
    else:
        count = int(rng.choice(len(config.aspect_count_probs), p=config.aspect_count_probs)) + 1
        chosen = rng.choice(len(hierarchy.leaves), size=count, replace=False)
        raw = rng.dirichlet(np.linspace(3.0, 1.0, count))
        order = np.argsort(raw)[::-1]
        aspects = tuple(
            (hierarchy.leaves[int(chosen[i])], float(raw[i])) for i in order
        )
    primary_leaf = max(aspects, key=lambda pair: pair[1])[0][1]
    resolved_title = title if title is not None else synthetic_site_name(rng, primary_leaf)
    stem = resolved_title.split(".")[0]
    specific = [stem, f"{stem}-site"]
    exponent = config.leaf_zipf_exponent
    if config.leaf_zipf_spread > 0:
        exponent += float(rng.uniform(-config.leaf_zipf_spread, config.leaf_zipf_spread))
    distribution = mixture_distribution(aspects, specific, config, exponent)
    return ResourceModel(
        resource_id=resource_id,
        title=resolved_title,
        aspects=aspects,
        distribution=distribution,
    )
