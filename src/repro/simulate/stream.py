"""Interleaved tagging-event streams (the engine's input format).

A real tagging system does not see one resource's posts at a time — it
sees a single time-ordered log where posts for thousands of resources
interleave.  This module produces such streams two ways:

* :func:`dataset_event_stream` replays an existing
  :class:`~repro.core.dataset.TaggingDataset` as one merged event log
  (a k-way merge on timestamps, per-resource order preserved on ties);
* :func:`interleaved_event_stream` synthesises a stream directly from
  latent resource models *in global time order*, without materialising a
  dataset first — the generator for engine benchmarks and soak tests.
  The Pólya-urn imitation dynamic (when enabled on the tagger behaviour)
  is honoured: each resource's observed counts grow as its events are
  emitted, exactly as in :mod:`repro.simulate.generator`.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

import numpy as np

from repro.core.dataset import TaggingDataset
from repro.engine.events import TagEvent
from repro.simulate.ontology import TopicHierarchy
from repro.simulate.popularity import PopularityConfig, draw_total_posts
from repro.simulate.resource_models import AspectConfig, build_resource_model
from repro.simulate.taggers import TaggerBehavior, generate_post

__all__ = ["dataset_event_stream", "interleaved_event_stream"]


def dataset_event_stream(dataset: TaggingDataset) -> Iterator[TagEvent]:
    """Replay a dataset as one interleaved, time-ordered event stream.

    Events are merged across resources by timestamp; ties are broken by
    resource order and per-resource post order, so every resource's own
    sequence arrives in its original order (which is all the stability
    model depends on).
    """

    def resource_events(resource_index: int):
        resource = dataset.resources[resource_index]
        for post_index, post in enumerate(resource.sequence):
            yield (
                post.timestamp,
                resource_index,
                post_index,
                TagEvent.from_post(resource.resource_id, post),
            )

    streams = (resource_events(i) for i in range(len(dataset)))
    for _, _, _, event in heapq.merge(*streams):
        yield event


def interleaved_event_stream(
    n_resources: int = 100,
    seed: int = 0,
    *,
    popularity: PopularityConfig | None = None,
    aspects: AspectConfig | None = None,
    tagger: TaggerBehavior | None = None,
    year_days: float = 365.0,
    max_events: int | None = None,
) -> Iterator[TagEvent]:
    """Synthesise an interleaved multi-resource event stream.

    Per-resource post counts follow the corpus popularity model (bounded
    Pareto); posting times are uniform over the year, so the emitted
    stream hops between resources the way a live log does.

    Args:
        n_resources: Number of latent resources.
        seed: RNG seed (identical seeds give identical streams).
        popularity: Post-count distribution (corpus default when None).
        aspects: Resource aspect mixture knobs.
        tagger: Crowd noise model.
        year_days: Length of the simulated period.
        max_events: Optional cap on the number of events emitted.

    Yields:
        :class:`TagEvent` records in global time order.
    """
    rng = np.random.default_rng(seed)
    hierarchy = TopicHierarchy.from_taxonomy()
    aspects = aspects or AspectConfig()
    behavior = tagger or TaggerBehavior()
    totals = draw_total_posts(n_resources, rng, popularity)

    models = [
        build_resource_model(f"s{index:06d}", hierarchy, rng, aspects)
        for index in range(n_resources)
    ]
    resource_of_event = np.repeat(np.arange(n_resources), totals)
    timestamps = rng.uniform(0.0, year_days, size=resource_of_event.size)
    order = np.argsort(timestamps, kind="stable")

    observed: list[dict[str, int] | None]
    if behavior.imitation_rate > 0:
        observed = [{} for _ in range(n_resources)]
    else:
        observed = [None] * n_resources
    post_index = np.zeros(n_resources, dtype=np.int64)

    emitted = 0
    for position in order:
        resource = int(resource_of_event[position])
        timestamp = float(timestamps[position])
        post = generate_post(
            models[resource],
            int(post_index[resource]),
            timestamp,
            rng,
            behavior,
            observed_counts=observed[resource],
        )
        post_index[resource] += 1
        counts = observed[resource]
        if counts is not None:
            for tag in post.tags:
                counts[tag] = counts.get(tag, 0) + 1
        yield TagEvent(
            resource_id=models[resource].resource_id,
            tags=tuple(sorted(post.tags)),
            timestamp=timestamp,
            tagger=post.tagger,
        )
        emitted += 1
        if max_events is not None and emitted >= max_events:
            return
