"""Synthetic del.icio.us-style corpora (the paper's dataset substitute).

The generator reproduces the statistical mechanisms the paper's
evaluation relies on — per-resource rfd convergence (latent tag
distributions + multinomial tagging), the skewed popularity of Fig 1(b)
(bounded Pareto post counts), a large under-tagged population at the
cutoff (Beta initial shares), crowd noise (typos, personal tags, spam),
and an ODP-like topic hierarchy for ground-truth similarity.
"""

from repro.simulate.generator import (
    CorpusConfig,
    CorpusGenerator,
    GeneratedCorpus,
    generate_posts_for_model,
)
from repro.simulate.ontology import TopicHierarchy, aspect_similarity, pairwise_ground_truth
from repro.simulate.popularity import (
    PopularityConfig,
    draw_initial_share,
    draw_total_posts,
    heavy_tail_counts,
)
from repro.simulate.resource_models import (
    AspectConfig,
    ResourceModel,
    TagSampler,
    build_resource_model,
    mixture_distribution,
    synthetic_site_name,
)
from repro.simulate.scenario import (
    CaseStudyScenario,
    CaseStudySubject,
    case_study_scenario,
    figure1a_scenario,
    paper_scenario,
    small_scenario,
    tiny_scenario,
    universe_scenario,
)
from repro.simulate.stream import dataset_event_stream, interleaved_event_stream
from repro.simulate.taggers import TaggerBehavior, generate_post
from repro.simulate.vocab import (
    GENERAL_TAGS,
    PERSONAL_TAGS,
    SEED_TAXONOMY,
    domain_tag_pool,
    leaf_tag_pool,
    zipf_weights,
)

__all__ = [
    "AspectConfig",
    "CaseStudyScenario",
    "CaseStudySubject",
    "CorpusConfig",
    "CorpusGenerator",
    "GENERAL_TAGS",
    "GeneratedCorpus",
    "PERSONAL_TAGS",
    "PopularityConfig",
    "ResourceModel",
    "SEED_TAXONOMY",
    "TagSampler",
    "TaggerBehavior",
    "TopicHierarchy",
    "aspect_similarity",
    "build_resource_model",
    "case_study_scenario",
    "dataset_event_stream",
    "domain_tag_pool",
    "draw_initial_share",
    "draw_total_posts",
    "figure1a_scenario",
    "generate_post",
    "generate_posts_for_model",
    "heavy_tail_counts",
    "interleaved_event_stream",
    "leaf_tag_pool",
    "mixture_distribution",
    "paper_scenario",
    "pairwise_ground_truth",
    "small_scenario",
    "synthetic_site_name",
    "tiny_scenario",
    "universe_scenario",
    "zipf_weights",
]
