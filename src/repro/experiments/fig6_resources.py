"""Figure 6(e): effect of the number of resources at a fixed budget.

Random subsets of increasing size are drawn from the corpus; every
strategy (and DP) spends the same fixed budget on each subset.  Quality
falls as ``n`` grows — the budget is spread thinner — while the strategy
ordering (FP/FP-MU closest to DP) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation import gains_from_profiles, solve_dp
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.evaluation import TraceEvaluator
from repro.experiments.harness import ExperimentHarness, default_strategies
from repro.experiments.report import render_table
from repro.allocation.runner import IncentiveRunner

__all__ = ["Fig6eResult", "figure_6e"]


@dataclass(frozen=True)
class Fig6eResult:
    """Quality at a fixed budget across corpus sizes.

    Attributes:
        resource_counts: The swept subset sizes.
        budget: The fixed budget.
        quality: ``quality[name][i]`` = quality on the ``i``-th subset.
    """

    resource_counts: tuple[int, ...]
    budget: int
    quality: dict[str, np.ndarray]

    def render(self) -> str:
        names = list(self.quality)
        rows = []
        for i, n in enumerate(self.resource_counts):
            rows.append([n] + [f"{self.quality[name][i]:.4f}" for name in names])
        return render_table(["n"] + names, rows)


def figure_6e(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
    *,
    budget: int | None = None,
    include_dp: bool = True,
) -> Fig6eResult:
    """Run the Fig 6(e) sweep.

    Args:
        scale: Experiment scale (subset sizes come from
            ``scale.resource_counts``; ignored when ``harness`` given).
        harness: Reuse a prepared harness; subsets reuse its ground truth.
        budget: Fixed budget (default: the scale's middle DP budget, a
            stand-in for the paper's default 5,000).
        include_dp: Include the optimal DP column.
    """
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    scale = harness.scale
    budget = budget if budget is not None else scale.dp_budgets[len(scale.dp_budgets) // 2]
    rng = np.random.default_rng(scale.seed + 1)

    strategies = default_strategies(scale.omega)
    names = [s.name for s in strategies] + (["DP"] if include_dp else [])
    quality: dict[str, list[float]] = {name: [] for name in names}

    for n in scale.resource_counts:
        indices = sorted(rng.choice(len(harness.corpus.dataset), size=n, replace=False))
        indices = [int(i) for i in indices]
        sub_corpus = harness.corpus.subset(indices)
        sub_split = sub_corpus.dataset.split(sub_corpus.cutoff)
        sub_truth = harness.truth.subset(indices)
        evaluator = TraceEvaluator(sub_split, sub_truth)
        runner = IncentiveRunner.replay(sub_split)
        for strategy in strategies:
            trace = runner.run(strategy, budget)
            quality[strategy.name].append(
                evaluator.quality_of_x(trace.x)
            )
        if include_dp:
            gains = gains_from_profiles(sub_truth.profiles, sub_split.initial_counts, budget)
            result = solve_dp(gains, budget)
            quality["DP"].append(evaluator.quality_of_x(result.x))

    return Fig6eResult(
        resource_counts=tuple(scale.resource_counts),
        budget=budget,
        quality={name: np.array(values) for name, values in quality.items()},
    )
