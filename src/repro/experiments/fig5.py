"""Figure 5: diminishing returns — quality versus number of posts.

The figure contrasts two resources: one that has received few posts
(where an extra post buys a large quality improvement) and one that has
received many (where the same posts buy almost nothing).  It is the
motivating picture for the FP strategy.

We reproduce it with two engineered resources of different complexity: a
single-aspect, concentrated resource (fast convergence) and a
three-aspect, flat one (slow convergence), and report the quality gained
by ``extra`` posts at a low and a high starting count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quality import QualityProfile
from repro.core.stability import PREPARATION_OMEGA, PREPARATION_TAU, practically_stable_rfd
from repro.experiments.report import render_table
from repro.simulate.generator import generate_posts_for_model
from repro.simulate.ontology import TopicHierarchy
from repro.simulate.resource_models import AspectConfig, build_resource_model
from repro.simulate.taggers import TaggerBehavior

__all__ = ["Fig5Result", "figure_5"]


@dataclass(frozen=True)
class Fig5Result:
    """Quality curves of a simple and a complex resource.

    Attributes:
        ks: Post counts.
        simple_quality: ``q(k)`` of the concentrated single-aspect
            resource.
        complex_quality: ``q(k)`` of the flat three-aspect resource.
        low_start: The "few posts so far" starting count.
        high_start: The "many posts so far" starting count.
        extra: Posts added at each starting count.
        low_gain: Quality gained by ``extra`` posts from ``low_start``
            (averaged over both resources).
        high_gain: Same from ``high_start`` — the paper's point is
            ``low_gain >> high_gain``.
    """

    ks: np.ndarray
    simple_quality: np.ndarray
    complex_quality: np.ndarray
    low_start: int
    high_start: int
    extra: int
    low_gain: float
    high_gain: float

    def render(self, step: int = 10) -> str:
        rows = []
        for position in range(0, len(self.ks), step):
            rows.append(
                [
                    int(self.ks[position]),
                    f"{self.simple_quality[position]:.4f}",
                    f"{self.complex_quality[position]:.4f}",
                ]
            )
        table = render_table(["posts", "simple (1 aspect)", "complex (3 aspects)"], rows)
        return (
            f"{table}\n"
            f"+{self.extra} posts at k={self.low_start}: quality gain {self.low_gain:+.4f}\n"
            f"+{self.extra} posts at k={self.high_start}: quality gain {self.high_gain:+.4f}"
        )


def figure_5(
    num_posts: int = 400,
    low_start: int = 10,
    high_start: int = 150,
    extra: int = 10,
    seed: int = 0,
) -> Fig5Result:
    """Reproduce Fig 5's quality-vs-posts curves.

    Args:
        num_posts: Length of the generated sequences.
        low_start: The under-tagged starting count (10, as in the paper).
        high_start: The well-tagged starting count.  The paper draws 50;
            our synthetic complex resource is still on the steep part of
            its curve there, so the default sits past both knees — the
            contrast ("large improvement" vs "small improvement") is the
            figure's point, not the x-coordinate.
        extra: The budget being contemplated (10 post tasks in the
            paper's illustration).
        seed: Generation seed.
    """
    rng = np.random.default_rng(seed)
    hierarchy = TopicHierarchy.from_taxonomy()
    behavior = TaggerBehavior()

    simple_model = build_resource_model(
        "fig5-simple",
        hierarchy,
        rng,
        AspectConfig(leaf_zipf_exponent=2.8, leaf_zipf_spread=0.0),
        forced_aspects=((("science", "physics"), 1.0),),
    )
    complex_model = build_resource_model(
        "fig5-complex",
        hierarchy,
        rng,
        AspectConfig(leaf_zipf_exponent=1.5, leaf_zipf_spread=0.0),
        forced_aspects=(
            (("science", "physics"), 0.4),
            (("programming", "java"), 0.35),
            (("news", "technews"), 0.25),
        ),
    )

    curves = []
    for model in (simple_model, complex_model):
        timestamps = np.arange(num_posts, dtype=np.float64)
        sequence = generate_posts_for_model(model, timestamps, rng, behavior)
        _, stable_rfd = practically_stable_rfd(
            sequence, PREPARATION_OMEGA, PREPARATION_TAU, resource_id=model.resource_id
        )
        curves.append(QualityProfile(sequence, stable_rfd).qualities[: num_posts + 1])

    simple_curve, complex_curve = curves
    low_gain = float(
        np.mean(
            [curve[low_start + extra] - curve[low_start] for curve in curves]
        )
    )
    high_gain = float(
        np.mean(
            [curve[high_start + extra] - curve[high_start] for curve in curves]
        )
    )
    return Fig5Result(
        ks=np.arange(num_posts + 1, dtype=np.int64),
        simple_quality=simple_curve,
        complex_quality=complex_curve,
        low_start=low_start,
        high_start=high_start,
        extra=extra,
        low_gain=low_gain,
        high_gain=high_gain,
    )
