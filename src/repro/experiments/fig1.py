"""Figure 1: the motivating observations.

* **Fig 1(a)** — relative frequencies of a popular resource's top tags
  versus the number of posts: jumpy below the unstable point, converging
  toward the stable point, flat afterwards.
* **Fig 1(b)** — the posts-per-resource distribution over a whole
  tagging system: a power law spanning orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.frequency import TagFrequencyTable
from repro.experiments.report import render_table
from repro.simulate.scenario import figure1a_scenario, universe_scenario

__all__ = ["Fig1aResult", "figure_1a", "Fig1bResult", "figure_1b"]


@dataclass(frozen=True)
class Fig1aResult:
    """Tag-frequency trajectories of one resource (Fig 1(a)).

    Attributes:
        tags: The tracked tags (the top tags of the final rfd).
        checkpoints: Post counts at which frequencies were sampled.
        trajectories: ``trajectories[t][j]`` = relative frequency of
            ``tags[t]`` after ``checkpoints[j]`` posts.
    """

    tags: tuple[str, ...]
    checkpoints: np.ndarray
    trajectories: np.ndarray

    def render(self) -> str:
        """The trajectories as a posts-by-tag table."""
        rows = []
        for j, k in enumerate(self.checkpoints):
            rows.append([int(k)] + [f"{self.trajectories[t][j]:.3f}" for t in range(len(self.tags))])
        return render_table(["posts"] + list(self.tags), rows)


def figure_1a(
    num_posts: int = 500,
    tracked_tags: int = 5,
    step: int = 20,
    seed: int = 0,
) -> Fig1aResult:
    """Reproduce Fig 1(a) on the Google-Earth-like synthetic resource.

    Args:
        num_posts: Length of the post sequence.
        tracked_tags: How many top tags to track.
        step: Sampling interval along the sequence.
        seed: Corpus seed.
    """
    corpus = figure1a_scenario(seed=seed, num_posts=num_posts)
    sequence = corpus.dataset.resources[0].sequence

    final = TagFrequencyTable.from_posts(sequence).rfd()
    tags = tuple(sorted(final, key=lambda t: -final[t])[:tracked_tags])

    checkpoints = np.arange(step, len(sequence) + 1, step, dtype=np.int64)
    trajectories = np.zeros((len(tags), len(checkpoints)))
    table = TagFrequencyTable()
    position = 0
    for k, post in enumerate(sequence, start=1):
        table.add_post(post.tags)
        if position < len(checkpoints) and k == checkpoints[position]:
            for t, tag in enumerate(tags):
                trajectories[t][position] = table.relative_frequency(tag)
            position += 1
    return Fig1aResult(tags=tags, checkpoints=checkpoints, trajectories=trajectories)


@dataclass(frozen=True)
class Fig1bResult:
    """The posts-per-resource histogram (Fig 1(b)) with a power-law check.

    Attributes:
        bucket_edges: Log-scale bucket lower edges (1, 2, 4, 8, ...).
        bucket_counts: Resources per bucket.
        slope: Fitted log-log slope (the paper's empirical line has
            slope ≈ -1 to -2; heavier tail = shallower).
    """

    bucket_edges: np.ndarray
    bucket_counts: np.ndarray
    slope: float

    def render(self) -> str:
        rows = [
            [f"[{int(lo)}, {int(lo * 2)})", int(count)]
            for lo, count in zip(self.bucket_edges, self.bucket_counts)
            if count > 0
        ]
        table = render_table(["posts-per-resource", "resources"], rows)
        return f"{table}\nlog-log slope = {self.slope:.2f}"


def figure_1b(n: int = 5000, seed: int = 0) -> Fig1bResult:
    """Reproduce Fig 1(b) on a heavy-tailed synthetic universe.

    Args:
        n: Universe size (the paper plots tens of millions of URLs; the
            shape — a straight descending log-log line — appears from a
            few thousand).
        seed: Corpus seed.
    """
    corpus = universe_scenario(seed=seed, n=n)
    counts = corpus.dataset.posts_per_resource()

    max_count = int(counts.max())
    edges = [1]
    while edges[-1] * 2 <= max_count:
        edges.append(edges[-1] * 2)
    edges_array = np.array(edges, dtype=np.float64)
    bucket_counts = np.zeros(len(edges), dtype=np.int64)
    for value in counts:
        bucket = int(np.floor(np.log2(value)))
        bucket_counts[min(bucket, len(edges) - 1)] += 1

    # Fit the log-log slope over non-empty buckets, normalising counts
    # by bucket width (the histogram buckets double in size).
    mask = bucket_counts > 0
    densities = bucket_counts[mask] / edges_array[mask]
    slope = float(
        np.polyfit(np.log10(edges_array[mask]), np.log10(densities), deg=1)[0]
    )
    return Fig1bResult(bucket_edges=edges_array, bucket_counts=bucket_counts, slope=slope)
