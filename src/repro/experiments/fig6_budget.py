"""Figures 6(a)–(d): the budget sweeps, plus the budget-to-stability study.

All four figures come from the same runs: every strategy spends the
maximum budget once, and the evaluator scores the trace at every
checkpoint —

* 6(a) tagging quality vs budget,
* 6(b) number of over-tagged resources vs budget,
* 6(c) wasted post tasks vs budget,
* 6(d) fraction of under-tagged resources vs budget —

with DP solved per checkpoint on its sparser grid.  The module also
implements the Section V-B "budget to full stability" comparison (FC
needs ~10× FP's budget in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation import AllocationStrategy
from repro.allocation.budget import AllocationTrace
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.harness import ExperimentHarness, StrategyComparison, default_strategies
from repro.experiments.report import render_comparison_metric

__all__ = [
    "figure_6abcd",
    "render_figure_6a",
    "render_figure_6b",
    "render_figure_6c",
    "render_figure_6d",
    "budget_to_stability",
    "StabilityBudgetResult",
]


def figure_6abcd(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
    *,
    include_dp: bool = True,
) -> StrategyComparison:
    """Run the full Fig 6(a)–(d) comparison at ``scale``.

    Args:
        scale: Experiment scale (ignored when ``harness`` is given).
        harness: Reuse an existing harness (corpus + ground truth) —
            benchmarks share one across the four figures.
        include_dp: Include the optimal DP series.
    """
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    return harness.compare(include_dp=include_dp)


def render_figure_6a(comparison: StrategyComparison) -> str:
    """Quality vs budget (Fig 6(a))."""
    return render_comparison_metric(comparison.series, "quality")


def render_figure_6b(comparison: StrategyComparison) -> str:
    """Over-tagged resources vs budget (Fig 6(b))."""
    return render_comparison_metric(comparison.series, "over_tagged")


def render_figure_6c(comparison: StrategyComparison) -> str:
    """Wasted post tasks vs budget (Fig 6(c))."""
    return render_comparison_metric(comparison.series, "wasted")


def render_figure_6d(comparison: StrategyComparison) -> str:
    """Under-tagged fraction vs budget (Fig 6(d))."""
    return render_comparison_metric(comparison.series, "under_fraction")


@dataclass(frozen=True)
class StabilityBudgetResult:
    """Budget needed to bring *every* resource past its stable point.

    Attributes:
        budgets: Strategy name -> smallest spent budget at which all
            resources' observed sequences satisfy Definition 8
            (``None`` if the strategy never achieves it within the
            replayable posts).
    """

    budgets: dict[str, int | None]

    def render(self) -> str:
        lines = ["budget to full stability:"]
        for name, budget in self.budgets.items():
            lines.append(f"  {name:6s} {'unreached' if budget is None else budget}")
        return "\n".join(lines)


def _stability_budget(
    trace: AllocationTrace, initial_counts: np.ndarray, stable_points: np.ndarray
) -> int | None:
    """Smallest spent budget after which every count >= its stable point.

    Under replay, a resource's observed sequence is always a prefix of
    its full sequence, so it satisfies Definition 8 exactly when its
    count reaches its (full-sequence) stable point.
    """
    deficits = np.maximum(0, stable_points - initial_counts)
    outstanding = int(np.count_nonzero(deficits))
    if outstanding == 0:
        return 0
    remaining = deficits.copy()
    spent = 0
    for index, cost in zip(trace.order, trace.spend):
        spent += cost
        if remaining[index] > 0:
            remaining[index] -= 1
            if remaining[index] == 0:
                outstanding -= 1
                if outstanding == 0:
                    return spent
    return None


def budget_to_stability(
    harness: ExperimentHarness,
    strategies: list[AllocationStrategy] | None = None,
) -> StabilityBudgetResult:
    """The Section V-B stability-budget comparison.

    Runs each strategy with the entire replayable future as budget and
    finds when (if ever) all resources become practically stable.  The
    paper reports FC needing > 2M tasks where FP needs ~200k (90% less);
    the reproduction shows the same order-of-magnitude gap.

    Args:
        harness: A prepared experiment harness.
        strategies: Default: the paper's five.
    """
    strategies = (
        default_strategies(harness.scale.omega) if strategies is None else strategies
    )
    total = harness.split.total_future_posts
    budgets: dict[str, int | None] = {}
    for strategy in strategies:
        trace = harness.runner.run(strategy, total)
        budgets[strategy.name] = _stability_budget(
            trace, harness.split.initial_counts, harness.truth.stable_points
        )
    return StabilityBudgetResult(budgets=budgets)
