"""Figures 6(g) and 6(h): runtime scaling of the strategies and DP.

The paper's qualitative result: DP's runtime explodes with the budget
(its complexity is ``O(n|T|B²)``) while every online strategy scales
near-linearly; across resource counts all strategies stay fast and DP
dominates by orders of magnitude.  Absolute numbers differ from the
paper's C++ prototype; the *ratios* are what these figures check.

Wall-clock measurement lives here (for examples and reports); the
pytest-benchmark variants in ``benchmarks/`` give statistically robust
timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.allocation import gains_from_profiles, solve_dp
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.harness import ExperimentHarness, default_strategies
from repro.experiments.report import render_table

__all__ = ["RuntimeResult", "runtime_vs_budget", "runtime_vs_resources"]


@dataclass(frozen=True)
class RuntimeResult:
    """Wall-clock seconds per strategy over a swept parameter.

    Attributes:
        parameter_name: "budget" or "n".
        parameter_values: The sweep grid.
        seconds: ``seconds[name][i]`` = runtime at the ``i``-th value.
    """

    parameter_name: str
    parameter_values: tuple[int, ...]
    seconds: dict[str, np.ndarray]

    def render(self) -> str:
        names = list(self.seconds)
        rows = []
        for i, value in enumerate(self.parameter_values):
            rows.append([value] + [f"{self.seconds[name][i]:.4f}" for name in names])
        return render_table([self.parameter_name] + names, rows)


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def runtime_vs_budget(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
    *,
    budgets: tuple[int, ...] | None = None,
    include_dp: bool = True,
) -> RuntimeResult:
    """Fig 6(g): runtime vs budget for all strategies (+ DP).

    Args:
        scale: Experiment scale (ignored with ``harness``).
        harness: Reuse a prepared harness.
        budgets: Sweep grid (default: the scale's non-zero checkpoints).
        include_dp: Time the DP solver as well (at the same budgets —
            keep the grid modest, DP is the quadratic one).
    """
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    scale = harness.scale
    grid = tuple(b for b in (budgets or scale.budgets) if b > 0)
    strategies = default_strategies(scale.omega)
    seconds: dict[str, list[float]] = {s.name: [] for s in strategies}
    if include_dp:
        seconds["DP"] = []

    for budget in grid:
        for strategy in strategies:
            seconds[strategy.name].append(
                _timed(lambda s=strategy, b=budget: harness.runner.run(s, b))
            )
        if include_dp:
            gains = gains_from_profiles(
                harness.truth.profiles, harness.split.initial_counts, budget
            )
            seconds["DP"].append(_timed(lambda g=gains, b=budget: solve_dp(g, b)))

    return RuntimeResult(
        parameter_name="budget",
        parameter_values=grid,
        seconds={name: np.array(values) for name, values in seconds.items()},
    )


def runtime_vs_resources(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
    *,
    budget: int | None = None,
    include_dp: bool = True,
) -> RuntimeResult:
    """Fig 6(h): runtime vs number of resources at a fixed budget."""
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    scale = harness.scale
    budget = budget if budget is not None else scale.omega_sweep_budget
    rng = np.random.default_rng(scale.seed + 2)
    strategies = default_strategies(scale.omega)
    seconds: dict[str, list[float]] = {s.name: [] for s in strategies}
    if include_dp:
        seconds["DP"] = []

    from repro.allocation.runner import IncentiveRunner

    for n in scale.resource_counts:
        indices = sorted(int(i) for i in rng.choice(len(harness.corpus.dataset), size=n, replace=False))
        sub_corpus = harness.corpus.subset(indices)
        sub_split = sub_corpus.dataset.split(sub_corpus.cutoff)
        sub_truth = harness.truth.subset(indices)
        runner = IncentiveRunner.replay(sub_split)
        for strategy in strategies:
            seconds[strategy.name].append(
                _timed(lambda s=strategy, b=budget: runner.run(s, b))
            )
        if include_dp:
            gains = gains_from_profiles(sub_truth.profiles, sub_split.initial_counts, budget)
            seconds["DP"].append(_timed(lambda g=gains, b=budget: solve_dp(g, b)))

    return RuntimeResult(
        parameter_name="n",
        parameter_values=tuple(scale.resource_counts),
        seconds={name: np.array(values) for name, values in seconds.items()},
    )
