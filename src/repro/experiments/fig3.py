"""Figure 3: adjacent similarity, MA score, and the stable point.

The figure tracks one resource's adjacent similarity
``s(F(k-1), F(k))`` and its smoothed MA score ``m(k, ω)`` as posts
accumulate, and marks the smallest ``k`` where the MA score exceeds τ —
the practically-stable point (Definition 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stability import adjacent_similarity_series, find_stable_point, ma_series
from repro.experiments.report import render_table
from repro.simulate.scenario import figure1a_scenario

__all__ = ["Fig3Result", "figure_3"]


@dataclass(frozen=True)
class Fig3Result:
    """The two Fig 3 curves plus the detected stable point.

    Attributes:
        ks: Post counts ``k`` (1-based, full range).
        adjacent: Adjacent similarity at each ``k``.
        ma_ks: ``k`` values where the MA score is defined (``k >= ω``).
        ma_scores: ``m(k, ω)`` at those ``k``.
        omega: The window used.
        tau: The threshold used.
        stable_point: Smallest ``k`` with ``m(k, ω) > τ`` (None if the
            sequence never gets there).
    """

    ks: np.ndarray
    adjacent: np.ndarray
    ma_ks: np.ndarray
    ma_scores: np.ndarray
    omega: int
    tau: float
    stable_point: int | None

    def render(self, step: int = 10) -> str:
        ma_lookup = {int(k): float(v) for k, v in zip(self.ma_ks, self.ma_scores)}
        rows = []
        for position in range(step - 1, len(self.ks), step):
            k = int(self.ks[position])
            ma = ma_lookup.get(k)
            rows.append(
                [
                    k,
                    f"{self.adjacent[position]:.4f}",
                    "-" if ma is None else f"{ma:.4f}",
                ]
            )
        table = render_table(["k", "adjacent sim", f"MA(w={self.omega})"], rows)
        marker = (
            f"stable point (MA > {self.tau}): k = {self.stable_point}"
            if self.stable_point is not None
            else f"never exceeds tau = {self.tau}"
        )
        return f"{table}\n{marker}"


def figure_3(
    omega: int = 20,
    tau: float = 0.9999,
    num_posts: int = 400,
    seed: int = 0,
) -> Fig3Result:
    """Reproduce Fig 3 (ω = 20, as in the paper's illustration).

    The paper's trace crosses τ = 0.99 near k = 100 on its real
    del.icio.us resource.  Synthetic count vectors produce higher
    adjacent similarities at small k, so the default threshold here is
    the stringent τ = 0.9999, which lands the stable point on the same
    ~100–150 post timescale (see EXPERIMENTS.md).

    Args:
        omega: MA window.
        tau: Stability threshold.
        num_posts: Sequence length to examine.
        seed: Corpus seed.
    """
    corpus = figure1a_scenario(seed=seed, num_posts=num_posts)
    sequence = corpus.dataset.resources[0].sequence

    adjacent = np.array(adjacent_similarity_series(sequence))
    ma_points = ma_series(sequence, omega)
    ma_ks = np.array([k for k, _ in ma_points], dtype=np.int64)
    ma_scores = np.array([v for _, v in ma_points])
    stable_point = find_stable_point(sequence, omega, tau)
    return Fig3Result(
        ks=np.arange(1, len(sequence) + 1, dtype=np.int64),
        adjacent=adjacent,
        ma_ks=ma_ks,
        ma_scores=ma_scores,
        omega=omega,
        tau=tau,
        stable_point=stable_point,
    )
