"""Experiment scales: one knob set shared by every figure harness.

The paper's evaluation runs on 5,000 resources with budgets to 10,000.
That scale is a single config away (:data:`PAPER_SCALE`), but the default
benchmarks use a proportionally reduced corpus so the full suite runs on
a laptop in minutes while preserving every qualitative relationship
(strategy ordering, crossovers, waste shares).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "TEST_SCALE", "DEFAULT_SCALE", "PAPER_SCALE"]


@dataclass(frozen=True)
class ExperimentScale:
    """Scale parameters for the Fig 6 / Fig 7 experiment harnesses.

    Attributes:
        n_resources: Corpus size (after stability filtering).
        budgets: Checkpoint budgets for the sweeps; the largest is the
            total budget given to the online strategies.
        dp_budgets: Budgets at which DP is solved (a subset, since DP is
            the expensive solver).
        omega: MA window for MU / FP-MU (the paper's default is 5).
        omega_sweep: The ω values of the Fig 6(f) sweep.
        omega_sweep_budget: Budget used in the Fig 6(f) sweep (small
            enough that the warm-up crossover falls inside the sweep).
        resource_counts: Corpus sizes of the Fig 6(e) sweep.
        seed: Corpus seed.
    """

    n_resources: int = 250
    budgets: tuple[int, ...] = (0, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2250, 2500)
    dp_budgets: tuple[int, ...] = (0, 500, 1000, 1500, 2000, 2500)
    omega: int = 5
    omega_sweep: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14, 16)
    omega_sweep_budget: int = 600
    resource_counts: tuple[int, ...] = (50, 100, 150, 200, 250)
    seed: int = 7

    @property
    def max_budget(self) -> int:
        """The largest checkpoint budget."""
        return max(self.budgets)


TEST_SCALE = ExperimentScale(
    n_resources=40,
    budgets=(0, 50, 100, 150, 200),
    dp_budgets=(0, 100, 200),
    omega_sweep=(2, 4, 6, 8),
    omega_sweep_budget=120,
    resource_counts=(10, 20, 40),
    seed=11,
)
"""A seconds-fast scale for the test suite."""

DEFAULT_SCALE = ExperimentScale()
"""The benchmark default (≈ 1/20 of the paper's resource count)."""

PAPER_SCALE = ExperimentScale(
    n_resources=5000,
    budgets=tuple(range(0, 10001, 1000)),
    dp_budgets=(0, 2500, 5000, 7500, 10000),
    omega_sweep=(2, 4, 6, 8, 10, 12, 14, 16),
    omega_sweep_budget=5000,
    resource_counts=(1000, 2000, 3000, 4000, 5000),
    seed=7,
)
"""The paper's full scale (minutes-to-hours; not used by default)."""
