"""Tables VI and VII: the top-10 similar-resources case studies.

For each engineered subject (see
:func:`repro.simulate.scenario.case_study_scenario`), four top-10 lists
are compared:

* **Jan 31** — rfds from the initial posts only (the subject's biased
  early posts make the list *wrong*: the paper's myphysicslab.com ranked
  next to Java sites);
* **FC (B)** — rfds after the Free Choice baseline spends budget B;
* **FP (B)** — rfds after Fewest Posts First spends the same budget;
* **Dec 31** — rfds from the full year (the ideal list).

The per-list score is its overlap with the Dec 31 list; the paper's
result — FP ≈ 9/10, FC ≈ 4/10, and the over-popular espn-like control
identical in all four columns — is what the reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.frequency import TagFrequencyTable
from repro.allocation import AllocationStrategy, FewestPostsFirst, FreeChoice, IncentiveRunner
from repro.analysis.ranking import RankedResource, overlap_at_k, top_k_similar
from repro.experiments.report import render_table
from repro.simulate.scenario import CaseStudyScenario, CaseStudySubject

__all__ = ["SubjectTopK", "CaseStudyResult", "run_case_study"]


@dataclass(frozen=True)
class SubjectTopK:
    """The four top-k lists of one subject (one paper table).

    Attributes:
        subject: The engineered subject.
        columns: Column label -> ranked rows ("Jan 31", "FC", "FP",
            "Dec 31").
        overlaps: Column label -> overlap with the Dec 31 list.
    """

    subject: CaseStudySubject
    columns: dict[str, list[RankedResource]]
    overlaps: dict[str, int]

    def render(self, labels: dict[str, tuple[str, ...]]) -> str:
        names = list(self.columns)
        k = max(len(rows) for rows in self.columns.values())

        def describe(row: RankedResource) -> str:
            leaf = labels.get(row.resource_id)
            prefix = f"[{leaf[-1]}] " if leaf else ""
            return f"{prefix}{row.resource_id}"

        rows = []
        for rank in range(k):
            cells: list[object] = [rank + 1]
            for name in names:
                column = self.columns[name]
                cells.append(describe(column[rank]) if rank < len(column) else "-")
            rows.append(cells)
        table = render_table(["rank"] + names, rows)
        overlap_line = "  ".join(
            f"{name}: {self.overlaps[name]}/{k}" for name in names
        )
        return (
            f"subject: {self.subject.resource_id} ({self.subject.story})\n"
            f"{table}\noverlap with Dec 31 — {overlap_line}"
        )


@dataclass(frozen=True)
class CaseStudyResult:
    """All subjects' tables plus shared labelling metadata."""

    subjects: list[SubjectTopK]
    labels: dict[str, tuple[str, ...]]
    budget: int

    def render(self) -> str:
        return "\n\n".join(s.render(self.labels) for s in self.subjects)


def _rfds_at_counts(scenario: CaseStudyScenario, counts) -> dict[str, dict[str, float]]:
    """rfd per resource id at the given per-resource post counts."""
    rfds: dict[str, dict[str, float]] = {}
    for index, resource in enumerate(scenario.corpus.dataset.resources):
        table = TagFrequencyTable.from_posts(resource.sequence.prefix(int(counts[index])))
        rfds[resource.resource_id] = table.rfd()
    return rfds


def run_case_study(
    scenario: CaseStudyScenario,
    budget: int = 2500,
    k: int = 10,
    strategies: tuple[AllocationStrategy, ...] | None = None,
) -> CaseStudyResult:
    """Produce the Tables VI/VII comparison on a case-study scenario.

    Args:
        scenario: The engineered corpus.
        budget: Post tasks each strategy may spend (the paper uses
            10,000 over 5,000 resources; scale proportionally).
        k: Top-list length.
        strategies: The strategy columns (default: FC and FP, as in the
            paper's tables).

    Returns:
        One :class:`SubjectTopK` per subject, Table VI's first.
    """
    strategies = strategies if strategies is not None else (FreeChoice(), FewestPostsFirst())
    dataset = scenario.corpus.dataset
    split = dataset.split(scenario.corpus.cutoff)
    runner = IncentiveRunner.replay(split)

    # Column states: initial, per-strategy final, and full-year.
    count_states: dict[str, object] = {"Jan 31": split.initial_counts}
    for strategy in strategies:
        trace = runner.run(strategy, budget)
        count_states[f"{strategy.name} (B={budget})"] = split.initial_counts + trace.x
    count_states["Dec 31"] = dataset.posts_per_resource()

    rfd_states = {
        label: _rfds_at_counts(scenario, counts) for label, counts in count_states.items()
    }

    labels: dict[str, tuple[str, ...]] = {}
    for resource_id, leaf in scenario.pool_labels.items():
        labels[resource_id] = leaf
    for resource in dataset.resources:
        if resource.category is not None and resource.resource_id not in labels:
            labels[resource.resource_id] = resource.category

    subjects: list[SubjectTopK] = []
    for subject in scenario.subjects:
        columns: dict[str, list[RankedResource]] = {}
        for label, rfds in rfd_states.items():
            subject_rfd = rfds[subject.resource_id]
            candidates = {
                resource_id: rfd
                for resource_id, rfd in rfds.items()
                if resource_id != subject.resource_id
            }
            columns[label] = top_k_similar(subject_rfd, candidates, k)
        reference = columns["Dec 31"]
        overlaps = {
            label: overlap_at_k(rows, reference) for label, rows in columns.items()
        }
        subjects.append(SubjectTopK(subject=subject, columns=columns, overlaps=overlaps))

    return CaseStudyResult(subjects=subjects, labels=labels, budget=budget)
