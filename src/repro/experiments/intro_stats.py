"""The Section I statistics: the paper's motivating numbers.

On its 5,000-URL sample the paper reports:

* stable points range 50–200 posts, average 112;
* ~7% of URLs over-tagged at the reference time, and 48% of all posts
  went to URLs that had already passed their stable points;
* ~25% of URLs under-tagged (≤ 10 posts);
* redirecting 1% of the wasted posts would have carried every
  under-tagged URL past its unstable point.

:func:`intro_statistics` recomputes all of them on a synthetic corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stable_points import (
    UNDER_TAGGED_THRESHOLD,
    StablePointSummary,
    dataset_stable_points,
)
from repro.analysis.waste import WasteReport, salvage_requirement, waste_report
from repro.simulate.generator import GeneratedCorpus
from repro.simulate.scenario import paper_scenario

__all__ = ["IntroStats", "intro_statistics"]


@dataclass(frozen=True)
class IntroStats:
    """The recomputed Section I statistics.

    Attributes:
        stable_points: Distribution of stable points (paper: 50–200,
            avg 112).
        cutoff_report: Health at the January cutoff — over-tagged count
            (paper: ~7%) and under-tagged fraction (paper: ~25%).
        year_report: Health at year end; its ``wasted_posts`` over
            ``total_posts`` is the paper's 48% waste share.
        salvage_posts: Posts needed to carry every under-tagged resource
            past the unstable point.
        salvage_ratio: ``salvage_posts`` / ``wasted_posts`` — the paper
            says 1% suffices.
    """

    stable_points: StablePointSummary
    cutoff_report: WasteReport
    year_report: WasteReport
    salvage_posts: int
    salvage_ratio: float

    def render(self) -> str:
        n = len(self.stable_points.stable_points)
        over_pct = 100.0 * self.cutoff_report.over_tagged / n
        return "\n".join(
            [
                "Section I statistics (synthetic corpus vs paper):",
                f"  stable points: mean={self.stable_points.mean:.0f} "
                f"range=[{self.stable_points.minimum}, {self.stable_points.maximum}] "
                "(paper: avg 112, range 50-200)",
                f"  over-tagged at cutoff: {self.cutoff_report.over_tagged}/{n} "
                f"({over_pct:.1f}%) (paper: ~7%)",
                f"  under-tagged at cutoff: "
                f"{100.0 * self.cutoff_report.under_tagged_fraction:.1f}% (paper: ~25%)",
                f"  posts wasted over the year: "
                f"{100.0 * self.year_report.wasted_fraction:.1f}% (paper: 48%)",
                f"  salvage: {self.salvage_posts} posts needed = "
                f"{100.0 * self.salvage_ratio:.1f}% of wasted (paper: ~1%)",
            ]
        )


def intro_statistics(
    corpus: GeneratedCorpus | None = None,
    *,
    n: int = 250,
    seed: int = 7,
    under_threshold: int = UNDER_TAGGED_THRESHOLD,
) -> IntroStats:
    """Recompute the Section I statistics.

    Args:
        corpus: A stability-filtered corpus (generated at ``n``/``seed``
            when omitted).
        n: Corpus size when generating.
        seed: Corpus seed when generating.
        under_threshold: The unstable point.
    """
    corpus = corpus if corpus is not None else paper_scenario(n=n, seed=seed)
    dataset = corpus.dataset
    summary = dataset_stable_points(dataset)
    split = dataset.split(corpus.cutoff)

    cutoff_report = waste_report(
        split.initial_counts, summary.stable_points, under_threshold=under_threshold
    )
    year_report = waste_report(
        dataset.posts_per_resource(), summary.stable_points, under_threshold=under_threshold
    )
    salvage = salvage_requirement(split.initial_counts, under_threshold=under_threshold)
    ratio = salvage / year_report.wasted_posts if year_report.wasted_posts else float("inf")
    return IntroStats(
        stable_points=summary,
        cutoff_report=cutoff_report,
        year_report=year_report,
        salvage_posts=salvage,
        salvage_ratio=ratio,
    )
