"""The shared experiment harness: corpus → strategies → scored series.

Every "… vs budget" figure (6(a)–(d)) and the Fig 7 accuracy sweep run
through :class:`ExperimentHarness`: it builds the split, the ground
truth, the runner and the evaluator once, executes each strategy at the
maximum budget, scores the trace at every checkpoint, and solves DP at
its (sparser) budget grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import DatasetSplit
from repro.allocation import (
    AllocationStrategy,
    IncentiveRunner,
    gains_from_profiles,
    solve_dp,
)
from repro.allocation.budget import AllocationTrace
from repro.api.registry import STRATEGIES
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.evaluation import EvaluationSeries, GroundTruth, TraceEvaluator
from repro.simulate.generator import GeneratedCorpus
from repro.simulate.scenario import paper_scenario

__all__ = ["ExperimentHarness", "StrategyComparison", "default_strategies"]

DEFAULT_LINEUP = ("FC", "RR", "FP", "MU", "FP-MU")
"""The paper's five practical strategies, in its reporting order."""


def default_strategies(omega: int) -> list[AllocationStrategy]:
    """Build the paper's five practical strategies from the registry.

    Each strategy receives ``omega`` iff its declared parameter schema
    takes one (FC/RR/FP are parameter-free) — the registry replaces the
    old hard-coded constructor calls.
    """
    return [
        STRATEGIES.create(name, **STRATEGIES.filter_params(name, omega=omega))
        for name in DEFAULT_LINEUP
    ]


@dataclass
class StrategyComparison:
    """All series of one experiment run (everything Fig 6(a)–(d) plots).

    Attributes:
        series: Strategy name -> scored series, insertion-ordered the
            way the harness ran them (DP last when included).
    """

    series: dict[str, EvaluationSeries] = field(default_factory=dict)

    def __getitem__(self, name: str) -> EvaluationSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def names(self) -> list[str]:
        return list(self.series)


class ExperimentHarness:
    """Builds and runs the Section V experiment pipeline on a corpus.

    Args:
        corpus: A stability-filtered corpus (every resource must reach a
            practically-stable rfd — use
            :func:`~repro.simulate.scenario.paper_scenario`).
        scale: Budget grids and strategy parameters.
    """

    def __init__(self, corpus: GeneratedCorpus, scale: ExperimentScale = DEFAULT_SCALE) -> None:
        self.corpus = corpus
        self.scale = scale
        self.split: DatasetSplit = corpus.dataset.split(corpus.cutoff)
        self.truth = GroundTruth.build(corpus.dataset)
        self.evaluator = TraceEvaluator(self.split, self.truth)
        self.runner = IncentiveRunner.replay(self.split)

    @classmethod
    def from_scale(cls, scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentHarness:
        """Generate a fresh corpus at ``scale`` and wrap it."""
        corpus = paper_scenario(n=scale.n_resources, seed=scale.seed)
        return cls(corpus, scale)

    @classmethod
    def from_spec(cls, spec, scale: ExperimentScale = DEFAULT_SCALE) -> ExperimentHarness:
        """Build the harness from a :class:`~repro.api.specs.CorpusSpec`.

        Only generated corpus kinds qualify (the harness scores against
        latent-model ground truth), and the corpus keeps its native
        cutoff — the harness' budget grids are calibrated to it.

        Raises:
            SpecError: For a model-less (``jsonl``) corpus spec or a
                spec that overrides the cutoff.
        """
        from repro.core.errors import SpecError
        from repro.api.corpus import materialize

        if spec.cutoff is not None:
            raise SpecError("the experiment harness uses the corpus' native cutoff")
        corpus = materialize(spec)
        if corpus.generated is None:
            raise SpecError(
                f"corpus kind {spec.kind!r} has no latent models; the harness "
                "needs a generated corpus (paper/universe/tiny/small)"
            )
        return cls(corpus.generated, scale)  # type: ignore[arg-type]

    # ------------------------------------------------------------------

    def run_strategy(self, strategy: AllocationStrategy, budget: int | None = None) -> AllocationTrace:
        """Run one strategy at ``budget`` (default: the scale's maximum)."""
        budget = self.scale.max_budget if budget is None else budget
        return self.runner.run(strategy, budget)

    def score(self, trace: AllocationTrace) -> EvaluationSeries:
        """Score a trace at the scale's checkpoint budgets."""
        return self.evaluator.evaluate_series(trace, list(self.scale.budgets))

    def run_dp(self) -> EvaluationSeries:
        """Solve DP at each of the scale's DP budgets and score the results."""
        max_budget = max(self.scale.dp_budgets)
        gains = gains_from_profiles(
            self.truth.profiles, self.split.initial_counts, max_budget
        )
        xs: list[np.ndarray] = []
        for budget in self.scale.dp_budgets:
            truncated = [g[: budget + 1] for g in gains]
            xs.append(solve_dp(truncated, budget).x)
        return self.evaluator.evaluate_x("DP", list(self.scale.dp_budgets), xs)

    def compare(
        self,
        strategies: list[AllocationStrategy] | None = None,
        *,
        include_dp: bool = True,
    ) -> StrategyComparison:
        """Run the full Fig 6(a)–(d) comparison.

        Args:
            strategies: Strategies to run (default: the paper's five).
            include_dp: Whether to add the optimal DP series.

        Returns:
            A :class:`StrategyComparison` with one series per strategy.
        """
        strategies = (
            default_strategies(self.scale.omega) if strategies is None else strategies
        )
        comparison = StrategyComparison()
        for strategy in strategies:
            trace = self.run_strategy(strategy)
            comparison.series[strategy.name] = self.score(trace)
        if include_dp:
            comparison.series["DP"] = self.run_dp()
        return comparison
