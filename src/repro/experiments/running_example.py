"""The paper's running example (Tables I, II, IV; Examples 1–3).

Two resources — r1 = Google Earth, r2 = Picasa — with the exact posts
printed in the paper.  Every number in Tables II and IV is recomputed
from our implementation; the golden values (q1(3) = 0.953,
q2(2) = 0.897, optimal assignment (1,1) with quality 0.990, ...) are the
strongest direct correctness check the paper offers, and the test suite
asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.posts import Post
from repro.core.quality import QualityProfile
from repro.core.similarity import cosine
from repro.allocation import brute_force_optimal, gains_from_profiles, solve_dp
from repro.experiments.report import render_table

__all__ = ["RunningExampleResult", "running_example"]

# Table I (plus Example 3's two future posts per resource).
R1_POSTS = [
    Post.of("google", "earth", timestamp=1.0),
    Post.of("google", "geographic", timestamp=2.0),
    Post.of("earth", timestamp=3.0),
    Post.of("geographic", "earth", timestamp=4.0),
    Post.of("google", "geographic", timestamp=5.0),
]
R2_POSTS = [
    Post.of("pictures", timestamp=1.0),
    Post.of("pictures", timestamp=2.0),
    Post.of("google", "pictures", timestamp=3.0),
    Post.of("google", timestamp=4.0),
]

# Table II's stable rfds (the paper's rounded values).
STABLE_RFD_R1 = {"google": 0.25, "geographic": 0.25, "earth": 0.5}
STABLE_RFD_R2 = {"google": 0.33, "pictures": 0.67}

INITIAL_COUNTS = np.array([3, 2], dtype=np.int64)
BUDGET = 2


@dataclass(frozen=True)
class RunningExampleResult:
    """Every quantity of the running example.

    Attributes:
        rfd_r1: ``F1(3)`` (Table II's first row).
        rfd_r2: ``F2(2)``.
        q1_initial: ``q1(3)`` — the paper prints 0.953.
        q2_initial: ``q2(2)`` — the paper prints 0.897.
        assignment_qualities: Table IV: ``x -> (q1, q2, mean)`` for the
            three possible assignments of budget 2.
        optimal_x: The optimal assignment — the paper's (1, 1).
        optimal_quality: Its mean quality — the paper prints 0.990.
    """

    rfd_r1: dict[str, float]
    rfd_r2: dict[str, float]
    q1_initial: float
    q2_initial: float
    assignment_qualities: dict[tuple[int, int], tuple[float, float, float]]
    optimal_x: tuple[int, int]
    optimal_quality: float

    def render(self) -> str:
        lines = [
            "running example (Tables I, II, IV):",
            f"  F1(3) = {self.rfd_r1}",
            f"  F2(2) = {self.rfd_r2}",
            f"  q1(3) = {self.q1_initial:.3f}   (paper: 0.953)",
            f"  q2(2) = {self.q2_initial:.3f}   (paper: 0.897)",
        ]
        rows = []
        for (x1, x2), (q1, q2, mean) in sorted(self.assignment_qualities.items()):
            rows.append([f"({x1},{x2})", f"{q1:.3f}", f"{q2:.3f}", f"{mean:.3f}"])
        lines.append(render_table(["x", "q1(c1+x1)", "q2(c2+x2)", "q(c+x)"], rows))
        lines.append(
            f"  optimal: x = {self.optimal_x}, quality {self.optimal_quality:.3f} "
            "(paper: (1,1) at 0.990)"
        )
        return "\n".join(lines)


def running_example() -> RunningExampleResult:
    """Recompute the paper's running example end to end."""
    profile_r1 = QualityProfile(R1_POSTS, STABLE_RFD_R1)
    profile_r2 = QualityProfile(R2_POSTS, STABLE_RFD_R2)

    from repro.core.frequency import TagFrequencyTable

    table_r1 = TagFrequencyTable.from_posts(R1_POSTS[:3])
    table_r2 = TagFrequencyTable.from_posts(R2_POSTS[:2])

    assignments: dict[tuple[int, int], tuple[float, float, float]] = {}
    for x1 in range(BUDGET + 1):
        x2 = BUDGET - x1
        q1 = profile_r1.quality(int(INITIAL_COUNTS[0]) + x1)
        q2 = profile_r2.quality(int(INITIAL_COUNTS[1]) + x2)
        assignments[(x1, x2)] = (q1, q2, (q1 + q2) / 2)

    gains = gains_from_profiles([profile_r1, profile_r2], INITIAL_COUNTS, BUDGET)
    optimal = solve_dp(gains, BUDGET)
    check = brute_force_optimal(gains, BUDGET)
    assert abs(optimal.value - check.value) < 1e-12

    return RunningExampleResult(
        rfd_r1=table_r1.rfd(),
        rfd_r2=table_r2.rfd(),
        q1_initial=cosine(table_r1.rfd(), STABLE_RFD_R1),
        q2_initial=cosine(table_r2.rfd(), STABLE_RFD_R2),
        assignment_qualities=assignments,
        optimal_x=(int(optimal.x[0]), int(optimal.x[1])),
        optimal_quality=optimal.mean_quality,
    )
