"""Experiment harnesses: one module per figure/table of the paper.

| Paper item       | Module / entry point                                   |
|------------------|--------------------------------------------------------|
| Fig 1(a), 1(b)   | :func:`repro.experiments.fig1.figure_1a` / ``figure_1b`` |
| Fig 3            | :func:`repro.experiments.fig3.figure_3`                |
| Fig 5            | :func:`repro.experiments.fig5.figure_5`                |
| Fig 6(a)–(d)     | :func:`repro.experiments.fig6_budget.figure_6abcd`     |
| §V-B stability budget | :func:`repro.experiments.fig6_budget.budget_to_stability` |
| Fig 6(e)         | :func:`repro.experiments.fig6_resources.figure_6e`     |
| Fig 6(f)         | :func:`repro.experiments.fig6_omega.figure_6f`         |
| Fig 6(g), 6(h)   | :mod:`repro.experiments.fig6_runtime`                  |
| Fig 7(a), 7(b)   | :func:`repro.experiments.fig7.figure_7a` / ``figure_7b`` |
| Tables II/IV     | :func:`repro.experiments.running_example.running_example` |
| Tables VI/VII    | :func:`repro.experiments.case_study.run_case_study`    |
| §I statistics    | :func:`repro.experiments.intro_stats.intro_statistics` |
"""

from repro.experiments.case_study import CaseStudyResult, SubjectTopK, run_case_study
from repro.experiments.config import DEFAULT_SCALE, PAPER_SCALE, TEST_SCALE, ExperimentScale
from repro.experiments.evaluation import EvaluationSeries, GroundTruth, TraceEvaluator
from repro.experiments.fig1 import Fig1aResult, Fig1bResult, figure_1a, figure_1b
from repro.experiments.fig3 import Fig3Result, figure_3
from repro.experiments.fig5 import Fig5Result, figure_5
from repro.experiments.fig6_budget import (
    StabilityBudgetResult,
    budget_to_stability,
    figure_6abcd,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
)
from repro.experiments.fig6_omega import Fig6fResult, figure_6f
from repro.experiments.fig6_resources import Fig6eResult, figure_6e
from repro.experiments.fig6_runtime import (
    RuntimeResult,
    runtime_vs_budget,
    runtime_vs_resources,
)
from repro.experiments.fig7 import (
    Fig7aResult,
    Fig7bResult,
    SimilarityAccuracyEvaluator,
    figure_7a,
    figure_7b,
)
from repro.experiments.harness import ExperimentHarness, StrategyComparison, default_strategies
from repro.experiments.intro_stats import IntroStats, intro_statistics
from repro.experiments.report import render_comparison_metric, render_table
from repro.experiments.running_example import RunningExampleResult, running_example

__all__ = [
    "CaseStudyResult",
    "DEFAULT_SCALE",
    "EvaluationSeries",
    "ExperimentHarness",
    "ExperimentScale",
    "Fig1aResult",
    "Fig1bResult",
    "Fig3Result",
    "Fig5Result",
    "Fig6eResult",
    "Fig6fResult",
    "Fig7aResult",
    "Fig7bResult",
    "GroundTruth",
    "IntroStats",
    "PAPER_SCALE",
    "RunningExampleResult",
    "RuntimeResult",
    "SimilarityAccuracyEvaluator",
    "StabilityBudgetResult",
    "StrategyComparison",
    "SubjectTopK",
    "TEST_SCALE",
    "TraceEvaluator",
    "budget_to_stability",
    "default_strategies",
    "figure_1a",
    "figure_1b",
    "figure_3",
    "figure_5",
    "figure_6abcd",
    "figure_6e",
    "figure_6f",
    "figure_7a",
    "figure_7b",
    "intro_statistics",
    "render_comparison_metric",
    "render_figure_6a",
    "render_figure_6b",
    "render_figure_6c",
    "render_figure_6d",
    "render_table",
    "run_case_study",
    "running_example",
    "runtime_vs_budget",
    "runtime_vs_resources",
]
