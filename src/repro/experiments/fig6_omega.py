"""Figure 6(f): the effect of the window parameter ω on MU and FP-MU.

The paper's findings, both reproduced here:

* MU's quality *falls* as ω grows — a larger window disqualifies more
  under-tagged resources (those with fewer than ω posts), which are
  precisely the ones worth helping;
* FP-MU approaches (and beyond a crossover ω, equals) plain FP — a
  larger ω means a longer FP warm-up stage, and once the warm-up alone
  exhausts the budget, FP-MU *is* FP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.allocation import FewestPostsFirst, HybridFPMU, MostUnstableFirst
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.harness import ExperimentHarness
from repro.experiments.report import render_table

__all__ = ["Fig6fResult", "figure_6f"]


@dataclass(frozen=True)
class Fig6fResult:
    """Quality vs ω for MU and FP-MU, with FP as the flat reference.

    Attributes:
        omegas: The swept window sizes.
        budget: The budget each run spent.
        mu_quality: MU's final quality per ω.
        fpmu_quality: FP-MU's final quality per ω.
        fp_quality: FP's final quality (ω-independent).
        fpmu_warmup: FP-MU's computed warm-up budget per ω (the
            crossover is where this saturates at the full budget).
    """

    omegas: tuple[int, ...]
    budget: int
    mu_quality: np.ndarray
    fpmu_quality: np.ndarray
    fp_quality: float
    fpmu_warmup: np.ndarray

    def render(self) -> str:
        rows = []
        for i, omega in enumerate(self.omegas):
            rows.append(
                [
                    omega,
                    f"{self.mu_quality[i]:.4f}",
                    f"{self.fpmu_quality[i]:.4f}",
                    f"{self.fp_quality:.4f}",
                    int(self.fpmu_warmup[i]),
                ]
            )
        return render_table(["omega", "MU", "FP-MU", "FP (ref)", "warm-up"], rows)


def figure_6f(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
) -> Fig6fResult:
    """Run the Fig 6(f) ω sweep.

    The sweep budget is deliberately smaller than the main budget so the
    FP-MU warm-up crossover falls inside the swept ω range (with a huge
    budget the warm-up always completes and the effect vanishes).
    """
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    scale = harness.scale
    budget = scale.omega_sweep_budget

    fp_trace = harness.runner.run(FewestPostsFirst(), budget)
    fp_quality = harness.evaluator.quality_of_x(fp_trace.x)

    mu_quality = np.zeros(len(scale.omega_sweep))
    fpmu_quality = np.zeros(len(scale.omega_sweep))
    fpmu_warmup = np.zeros(len(scale.omega_sweep), dtype=np.int64)
    for i, omega in enumerate(scale.omega_sweep):
        mu_trace = harness.runner.run(MostUnstableFirst(omega=omega), budget)
        mu_quality[i] = harness.evaluator.quality_of_x(mu_trace.x)
        hybrid = HybridFPMU(omega=omega)
        fpmu_trace = harness.runner.run(hybrid, budget)
        fpmu_quality[i] = harness.evaluator.quality_of_x(fpmu_trace.x)
        fpmu_warmup[i] = hybrid.warmup_budget

    return Fig6fResult(
        omegas=tuple(scale.omega_sweep),
        budget=budget,
        mu_quality=mu_quality,
        fpmu_quality=fpmu_quality,
        fp_quality=fp_quality,
        fpmu_warmup=fpmu_warmup,
    )
