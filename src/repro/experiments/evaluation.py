"""Ground truth and trace scoring for the Section V experiments.

The experimental protocol separates two worlds:

* **strategies** observe initial posts and the posts their own tasks
  deliver — nothing else;
* the **evaluator** owns ground truth: every resource's practically-
  stable rfd (computed from the full post sequence under the stringent
  preparation parameters), its stable point, and a precomputed
  :class:`~repro.core.quality.QualityProfile`.

:class:`TraceEvaluator` scores an allocation trace at many budget
checkpoints in a single pass with O(1) delta updates per delivered task,
producing every y-axis of Fig 6 at once: tagging quality (a), over-tagged
resources (b), wasted tasks (c), and the under-tagged fraction (d).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import DatasetSplit, TaggingDataset
from repro.core.errors import DataModelError
from repro.core.quality import QualityProfile
from repro.core.stability import PREPARATION_OMEGA, PREPARATION_TAU, practically_stable_rfd
from repro.allocation.budget import AllocationTrace
from repro.analysis.stable_points import UNDER_TAGGED_THRESHOLD

__all__ = ["GroundTruth", "EvaluationSeries", "TraceEvaluator"]


@dataclass
class GroundTruth:
    """Per-resource stable rfds, stable points and quality profiles.

    Attributes:
        stable_points: Stable point per resource (under the parameters
            the truth was built with).
        stable_rfds: The practically-stable rfd per resource.
        profiles: ``q_i(k)`` for every prefix length, per resource.
        omega: Window the truth was built with.
        tau: Threshold the truth was built with.
    """

    stable_points: np.ndarray
    stable_rfds: list[dict[str, float]]
    profiles: list[QualityProfile]
    omega: int
    tau: float

    @classmethod
    def build(
        cls,
        dataset: TaggingDataset,
        omega: int = PREPARATION_OMEGA,
        tau: float = PREPARATION_TAU,
    ) -> GroundTruth:
        """Compute ground truth for every resource of ``dataset``.

        Raises:
            NotStableError: If any resource never stabilises — experiment
                corpora must be pre-filtered (see
                :func:`repro.simulate.scenario.paper_scenario`), exactly
                like the paper's 5,000-URL selection.
        """
        stable_points = np.zeros(len(dataset), dtype=np.int64)
        stable_rfds: list[dict[str, float]] = []
        profiles: list[QualityProfile] = []
        for index, resource in enumerate(dataset.resources):
            point, rfd = practically_stable_rfd(
                resource.sequence, omega, tau, resource_id=resource.resource_id
            )
            stable_points[index] = point
            stable_rfds.append(rfd)
            profiles.append(QualityProfile(resource.sequence, rfd))
        return cls(
            stable_points=stable_points,
            stable_rfds=stable_rfds,
            profiles=profiles,
            omega=omega,
            tau=tau,
        )

    def __len__(self) -> int:
        return len(self.profiles)

    def subset(self, indices: Sequence[int]) -> GroundTruth:
        """Ground truth restricted to ``indices`` (Fig 6(e) subsets)."""
        return GroundTruth(
            stable_points=self.stable_points[list(indices)].copy(),
            stable_rfds=[self.stable_rfds[i] for i in indices],
            profiles=[self.profiles[i] for i in indices],
            omega=self.omega,
            tau=self.tau,
        )


@dataclass(frozen=True)
class EvaluationSeries:
    """One strategy's metrics over a budget sweep (a Fig 6 line).

    Attributes:
        strategy_name: Display name of the strategy.
        budgets: Checkpoint budgets (ascending).
        quality: ``q(R, c + x_b)`` at each checkpoint (Fig 6(a)).
        over_tagged: Over-tagged resource count (Fig 6(b)).
        wasted: Cumulative wasted tasks (Fig 6(c)).
        under_fraction: Under-tagged resource fraction (Fig 6(d)).
    """

    strategy_name: str
    budgets: np.ndarray
    quality: np.ndarray
    over_tagged: np.ndarray
    wasted: np.ndarray
    under_fraction: np.ndarray

    def final_quality(self) -> float:
        """Quality at the largest checkpoint."""
        return float(self.quality[-1])


class TraceEvaluator:
    """Scores allocation traces against ground truth.

    Args:
        split: The dataset split the traces were produced on.
        truth: Ground truth for the same resources (positional).
        under_threshold: The unstable point used for "under-tagged".
    """

    def __init__(
        self,
        split: DatasetSplit,
        truth: GroundTruth,
        under_threshold: int = UNDER_TAGGED_THRESHOLD,
    ) -> None:
        if len(truth) != split.n:
            raise DataModelError(
                f"ground truth covers {len(truth)} resources, split has {split.n}"
            )
        self.split = split
        self.truth = truth
        self.under_threshold = under_threshold

    # ------------------------------------------------------------------
    # point evaluations
    # ------------------------------------------------------------------

    def quality_of_counts(self, counts: np.ndarray) -> float:
        """``q(R, k)`` for an explicit count vector (Definition 10)."""
        total = 0.0
        for index, profile in enumerate(self.truth.profiles):
            total += profile.quality(int(counts[index]))
        return total / len(self.truth.profiles)

    def quality_of_x(self, x: np.ndarray) -> float:
        """``q(R, c + x)`` for an assignment vector (DP results)."""
        return self.quality_of_counts(self.split.initial_counts + np.asarray(x))

    def evaluate_x(self, strategy_name: str, budgets: Sequence[int], xs: Sequence[np.ndarray]) -> EvaluationSeries:
        """Build a series from per-budget assignment vectors (DP sweeps).

        Args:
            strategy_name: Label for the series.
            budgets: Budget per assignment.
            xs: One assignment vector per budget.
        """
        from repro.analysis.waste import waste_report, wasted_tasks

        quality = np.zeros(len(budgets))
        over = np.zeros(len(budgets), dtype=np.int64)
        wasted = np.zeros(len(budgets), dtype=np.int64)
        under = np.zeros(len(budgets))
        for position, (budget, x) in enumerate(zip(budgets, xs)):
            counts = self.split.initial_counts + np.asarray(x)
            report = waste_report(
                counts, self.truth.stable_points, under_threshold=self.under_threshold
            )
            quality[position] = self.quality_of_counts(counts)
            over[position] = report.over_tagged
            wasted[position] = wasted_tasks(
                self.split.initial_counts, counts, self.truth.stable_points
            )
            under[position] = report.under_tagged_fraction
        return EvaluationSeries(
            strategy_name=strategy_name,
            budgets=np.asarray(budgets, dtype=np.int64),
            quality=quality,
            over_tagged=over,
            wasted=wasted,
            under_fraction=under,
        )

    # ------------------------------------------------------------------
    # trace evaluation
    # ------------------------------------------------------------------

    def evaluate_series(
        self, trace: AllocationTrace, budgets: Sequence[int]
    ) -> EvaluationSeries:
        """Score ``trace`` at every checkpoint in one delta-update pass.

        A checkpoint larger than the trace's spend reports the final
        state (the strategy ran out of proposals there).

        Args:
            trace: The allocation trace.
            budgets: Ascending checkpoint budgets.

        Raises:
            DataModelError: If budgets are not ascending.
        """
        budgets = list(budgets)
        if any(b2 < b1 for b1, b2 in zip(budgets, budgets[1:])):
            raise DataModelError("checkpoint budgets must be ascending")

        counts = self.split.initial_counts.copy()
        points = self.truth.stable_points
        profiles = self.truth.profiles
        n = self.split.n

        quality_sum = sum(
            profile.quality(int(counts[i])) for i, profile in enumerate(profiles)
        )
        over_count = int(((counts > points) & (points >= 0)).sum())
        under_count = int((counts <= self.under_threshold).sum())
        wasted_count = 0

        quality = np.zeros(len(budgets))
        over = np.zeros(len(budgets), dtype=np.int64)
        wasted = np.zeros(len(budgets), dtype=np.int64)
        under = np.zeros(len(budgets))

        spent = 0
        checkpoint = 0

        def snapshot(position: int) -> None:
            quality[position] = quality_sum / n
            over[position] = over_count
            wasted[position] = wasted_count
            under[position] = under_count / n

        for index, cost in zip(trace.order, trace.spend):
            while checkpoint < len(budgets) and spent + cost > budgets[checkpoint]:
                snapshot(checkpoint)
                checkpoint += 1
            if checkpoint >= len(budgets):
                break
            k = int(counts[index])
            profile = profiles[index]
            quality_sum += profile.quality(k + 1) - profile.quality(k)
            point = int(points[index])
            if point >= 0:
                if k >= point:
                    wasted_count += 1
                if k + 1 > point and k <= point:
                    over_count += 1
            if k <= self.under_threshold < k + 1:
                under_count -= 1
            counts[index] = k + 1
            spent += cost
        while checkpoint < len(budgets):
            snapshot(checkpoint)
            checkpoint += 1

        return EvaluationSeries(
            strategy_name=trace.strategy_name,
            budgets=np.asarray(budgets, dtype=np.int64),
            quality=quality,
            over_tagged=over,
            wasted=wasted,
            under_fraction=under,
        )
