"""Figure 7: does better tagging quality buy better similarity search?

The paper ranks every resource pair by the cosine similarity of rfds and
correlates that ranking (Kendall's τ) against an ODP-derived ground
truth; our ground truth is the aspect-weighted Wu–Palmer similarity of
the synthetic resources' latent topics (see
:mod:`repro.simulate.ontology`).

* **Fig 7(a)** — τ accuracy vs budget per strategy: the curves mirror the
  quality curves of Fig 6(a).
* **Fig 7(b)** — accuracy vs quality across all (strategy, budget)
  points: a strong positive correlation (the paper reports > 98%).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import DatasetSplit
from repro.core.errors import DataModelError
from repro.core.frequency import TagFrequencyTable
from repro.allocation import gains_from_profiles, solve_dp
from repro.allocation.budget import AllocationTrace
from repro.analysis.kendall import kendall_tau
from repro.analysis.stats import pearson_correlation
from repro.experiments.config import DEFAULT_SCALE, ExperimentScale
from repro.experiments.harness import ExperimentHarness, default_strategies
from repro.experiments.report import render_table
from repro.simulate.ontology import aspect_similarity
from repro.simulate.resource_models import ResourceModel

__all__ = ["SimilarityAccuracyEvaluator", "Fig7aResult", "figure_7a", "Fig7bResult", "figure_7b"]


class SimilarityAccuracyEvaluator:
    """Kendall-τ accuracy of rfd-based similarity against ground truth.

    Args:
        split: The dataset split rankings are computed on.
        models: Latent resource models (positional) supplying the
            ground-truth aspect mixtures.
    """

    def __init__(self, split: DatasetSplit, models: Sequence[ResourceModel]) -> None:
        if len(models) != split.n:
            raise DataModelError("models must align with the split's resources")
        self.split = split
        self.models = list(models)
        truth: list[float] = []
        for i in range(len(models)):
            for j in range(i + 1, len(models)):
                truth.append(aspect_similarity(models[i].aspects, models[j].aspects))
        self._truth = np.array(truth)

    # ------------------------------------------------------------------

    def _accuracy_from_tables(self, tables: Sequence[TagFrequencyTable]) -> float:
        scores: list[float] = []
        for i in range(len(tables)):
            counts_i = tables[i].counts()
            for j in range(i + 1, len(tables)):
                scores.append(tables[j].cosine_to(counts_i))
        return kendall_tau(np.array(scores), self._truth)

    def _tables_for_counts(self, counts: np.ndarray) -> list[TagFrequencyTable]:
        return [
            TagFrequencyTable.from_posts(
                self.split.resources[i].sequence.prefix(int(counts[i]))
            )
            for i in range(self.split.n)
        ]

    def accuracy_of_counts(self, counts: np.ndarray) -> float:
        """τ accuracy when resource ``i`` has ``counts[i]`` posts."""
        return self._accuracy_from_tables(self._tables_for_counts(counts))

    def series(self, trace: AllocationTrace, budgets: Sequence[int]) -> np.ndarray:
        """τ accuracy at each checkpoint of a trace (one walk, snapshots)."""
        budgets = list(budgets)
        if any(b2 < b1 for b1, b2 in zip(budgets, budgets[1:])):
            raise DataModelError("checkpoint budgets must be ascending")
        tables = self._tables_for_counts(self.split.initial_counts)
        positions = self.split.initial_counts.astype(np.int64).copy()
        accuracies = np.zeros(len(budgets))
        spent = 0
        checkpoint = 0
        for index, cost in zip(trace.order, trace.spend):
            while checkpoint < len(budgets) and spent + cost > budgets[checkpoint]:
                accuracies[checkpoint] = self._accuracy_from_tables(tables)
                checkpoint += 1
            if checkpoint >= len(budgets):
                break
            post = self.split.resources[index].sequence.post(int(positions[index]) + 1)
            tables[index].add_post(post.tags)
            positions[index] += 1
            spent += cost
        while checkpoint < len(budgets):
            accuracies[checkpoint] = self._accuracy_from_tables(tables)
            checkpoint += 1
        return accuracies


@dataclass(frozen=True)
class Fig7aResult:
    """τ accuracy (and quality, for Fig 7(b)) per strategy and budget.

    Attributes:
        budgets: Checkpoint budgets.
        accuracy: Strategy -> τ per checkpoint.
        quality: Strategy -> tagging quality per checkpoint (the Fig
            7(b) x-axis).
        dp_budgets: DP's sparser grid.
        dp_accuracy: DP's τ per DP budget.
        dp_quality: DP's quality per DP budget.
    """

    budgets: tuple[int, ...]
    accuracy: dict[str, np.ndarray]
    quality: dict[str, np.ndarray]
    dp_budgets: tuple[int, ...]
    dp_accuracy: np.ndarray
    dp_quality: np.ndarray

    def render(self) -> str:
        names = list(self.accuracy)
        rows = []
        for i, budget in enumerate(self.budgets):
            rows.append([budget] + [f"{self.accuracy[name][i]:.4f}" for name in names])
        table = render_table(["budget"] + names, rows)
        dp_rows = [
            [b, f"{self.dp_accuracy[i]:.4f}"] for i, b in enumerate(self.dp_budgets)
        ]
        dp_table = render_table(["budget", "DP"], dp_rows)
        return f"{table}\n\n{dp_table}"


def figure_7a(
    scale: ExperimentScale = DEFAULT_SCALE,
    harness: ExperimentHarness | None = None,
    *,
    subset_size: int = 100,
    include_dp: bool = True,
) -> Fig7aResult:
    """Run the Fig 7(a) accuracy sweep.

    All-pairs ranking is quadratic in the corpus, so the sweep runs on a
    random subset (the paper's τ values are likewise computed over a
    categorised subset — only ODP-listed URLs have ground truth).

    Args:
        scale: Experiment scale.
        harness: Reuse a prepared harness.
        subset_size: Resources in the ranking universe.
        include_dp: Add DP's points.
    """
    harness = harness if harness is not None else ExperimentHarness.from_scale(scale)
    scale = harness.scale
    rng = np.random.default_rng(scale.seed + 3)
    n = len(harness.corpus.dataset)
    subset_size = min(subset_size, n)
    indices = sorted(int(i) for i in rng.choice(n, size=subset_size, replace=False))

    sub_corpus = harness.corpus.subset(indices)
    sub_split = sub_corpus.dataset.split(sub_corpus.cutoff)
    sub_truth = harness.truth.subset(indices)
    from repro.allocation.runner import IncentiveRunner
    from repro.experiments.evaluation import TraceEvaluator

    runner = IncentiveRunner.replay(sub_split)
    evaluator = TraceEvaluator(sub_split, sub_truth)
    accuracy_evaluator = SimilarityAccuracyEvaluator(sub_split, sub_corpus.models)

    # Budgets are rescaled to the subset (the full-corpus budget grid
    # would drown a small subset in posts).
    budget_fraction = subset_size / n
    budgets = tuple(
        sorted({int(round(b * budget_fraction)) for b in scale.budgets})
    )

    accuracy: dict[str, np.ndarray] = {}
    quality: dict[str, np.ndarray] = {}
    for strategy in default_strategies(scale.omega):
        trace = runner.run(strategy, max(budgets))
        accuracy[strategy.name] = accuracy_evaluator.series(trace, budgets)
        quality[strategy.name] = evaluator.evaluate_series(trace, budgets).quality

    dp_budgets = tuple(
        sorted({int(round(b * budget_fraction)) for b in scale.dp_budgets})
    )
    dp_accuracy = np.zeros(len(dp_budgets))
    dp_quality = np.zeros(len(dp_budgets))
    if include_dp:
        gains = gains_from_profiles(
            sub_truth.profiles, sub_split.initial_counts, max(dp_budgets)
        )
        for i, budget in enumerate(dp_budgets):
            truncated = [g[: budget + 1] for g in gains]
            x = solve_dp(truncated, budget).x
            counts = sub_split.initial_counts + x
            dp_accuracy[i] = accuracy_evaluator.accuracy_of_counts(counts)
            dp_quality[i] = evaluator.quality_of_counts(counts)

    return Fig7aResult(
        budgets=budgets,
        accuracy=accuracy,
        quality=quality,
        dp_budgets=dp_budgets,
        dp_accuracy=dp_accuracy,
        dp_quality=dp_quality,
    )


@dataclass(frozen=True)
class Fig7bResult:
    """Accuracy-vs-quality points and their Pearson correlation (Eq. 15).

    Attributes:
        quality: x-coordinates (tagging quality of each run state).
        accuracy: y-coordinates (τ accuracy of the same state).
        correlation: Pearson correlation — the paper reports > 0.98.
    """

    quality: np.ndarray
    accuracy: np.ndarray
    correlation: float

    def render(self) -> str:
        rows = [
            [f"{q:.4f}", f"{a:.4f}"]
            for q, a in sorted(zip(self.quality, self.accuracy))
        ]
        table = render_table(["quality", "tau accuracy"], rows)
        return f"{table}\ncorrelation (Eq. 15) = {self.correlation:.4f}"


def figure_7b(fig7a: Fig7aResult) -> Fig7bResult:
    """Derive Fig 7(b) from a Fig 7(a) run.

    Every (strategy, budget) state contributes one (quality, accuracy)
    point; DP's states are included.
    """
    quality: list[float] = []
    accuracy: list[float] = []
    for name in fig7a.accuracy:
        quality.extend(float(v) for v in fig7a.quality[name])
        accuracy.extend(float(v) for v in fig7a.accuracy[name])
    quality.extend(float(v) for v in fig7a.dp_quality)
    accuracy.extend(float(v) for v in fig7a.dp_accuracy)
    points_q = np.array(quality)
    points_a = np.array(accuracy)
    return Fig7bResult(
        quality=points_q,
        accuracy=points_a,
        correlation=pearson_correlation(points_q, points_a),
    )
