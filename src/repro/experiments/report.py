"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.experiments.evaluation import EvaluationSeries

__all__ = ["render_table", "render_comparison_metric", "format_float"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly (NaN-safe)."""
    if isinstance(value, float) and np.isnan(value):
        return "nan"
    return f"{value:.{digits}f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A monospace table with one space-padded column per header.

    Args:
        headers: Column titles.
        rows: Cell values (stringified with ``str``).

    Returns:
        The rendered multi-line table.
    """
    table = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_comparison_metric(
    series: dict[str, EvaluationSeries],
    metric: str,
    *,
    value_format: Callable[[float], str] | None = None,
) -> str:
    """Render one metric of a strategy comparison as budget-by-strategy rows.

    Args:
        series: Strategy name -> scored series (budget grids may differ,
            e.g. DP's sparser grid; missing cells show "-").
        metric: Attribute of :class:`EvaluationSeries` to tabulate
            ("quality", "over_tagged", "wasted", "under_fraction").
        value_format: Cell formatter (default 4-digit float for float
            metrics, plain int otherwise).

    Returns:
        The rendered table.
    """
    budgets = sorted({int(b) for s in series.values() for b in s.budgets})
    names = list(series)
    lookup: dict[str, dict[int, float]] = {}
    for name, data in series.items():
        values = getattr(data, metric)
        lookup[name] = {int(b): float(v) for b, v in zip(data.budgets, values)}

    def default_format(value: float) -> str:
        if metric in ("over_tagged", "wasted"):
            return str(int(value))
        return format_float(value)

    formatter = value_format or default_format
    rows = []
    for budget in budgets:
        row: list[object] = [budget]
        for name in names:
            value = lookup[name].get(budget)
            row.append("-" if value is None else formatter(value))
        rows.append(row)
    return render_table(["budget"] + names, rows)
