"""``PackSpec`` — one frozen, JSON-round-tripping corpus request.

A pack spec is the pack-side analogue of :class:`repro.api.specs.Spec`:
``(name, seed, params)`` fully determines a corpus, so the same JSON
blob can be built locally, embedded in a :class:`~repro.api.specs.CorpusSpec`
(``kind="pack"``), shipped inside a :class:`~repro.api.specs.CampaignSpec`
to the server scheduler, and rebuilt anywhere with an identical content
fingerprint (pinned by ``tests/fixtures/pack_fingerprints.json``).

:func:`build_pack` is the one build path: resolve the registry entry,
run the builder, run the pack's declared quality filters, return the
surviving corpus with its :class:`~repro.packs.quality.QualityReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro import obs
from repro.api.specs import Spec, _check, _is_int
from repro.packs.quality import QualityReport, run_filters
from repro.packs.registry import PACKS, PackRegistry

__all__ = ["PackSpec", "PackBuild", "build_pack"]


@dataclass(frozen=True)
class PackSpec(Spec):
    """One deterministic corpus request: pack name + seed + parameters.

    Validation happens at construction: the name must be registered and
    every parameter must match the pack's declared schema, so a
    ``PackSpec`` that exists is a ``PackSpec`` that builds.

    Attributes:
        name: Registered pack name (see ``repro packs list``).
        seed: Corpus seed — identical ``(name, seed, params)`` triples
            yield identical corpus fingerprints, across processes and
            ``PYTHONHASHSEED`` values.
        params: Pack parameter overrides; undeclared names are rejected.
    """

    TYPE: ClassVar[str] = "pack"

    name: str = "tiny"
    seed: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check(isinstance(self.name, str) and bool(self.name),
               f"pack name must be a non-empty string, got {self.name!r}")
        _check(_is_int(self.seed), f"pack seed must be an int, got {self.seed!r}")
        _check(isinstance(self.params, dict), f"pack params must be a dict, got {self.params!r}")
        # Registry validation: unknown names raise listing the registered
        # packs; parameter overrides are checked against the declared
        # schema (and this also normalises e.g. int -> float).
        entry = PACKS.get(self.name)
        resolved = entry.validate_params(self.params)
        overridden = {k: resolved[k] for k in self.params}
        object.__setattr__(self, "params", overridden)

    def resolved_params(self) -> dict[str, Any]:
        """The full parameter set (declared defaults + overrides)."""
        return PACKS.get(self.name).validate_params(self.params)


@dataclass(frozen=True)
class PackBuild:
    """The result of one :func:`build_pack` call.

    Attributes:
        spec: The request that produced this build.
        corpus: The surviving corpus (flagged resources dropped when the
            pack enforces its filters).
        report: The quality pipeline's verdicts and the corpus
            fingerprint.
    """

    spec: PackSpec
    corpus: Any
    report: QualityReport


def build_pack(spec: PackSpec, *, registry: PackRegistry | None = None) -> PackBuild:
    """Build a pack spec into a quality-checked corpus.

    Args:
        spec: The corpus request.
        registry: Pack registry to resolve against (default
            :data:`~repro.packs.registry.PACKS`).

    Returns:
        A :class:`PackBuild` — corpus plus :class:`QualityReport`.

    Raises:
        SpecError: On an unknown pack name or invalid parameters.
        DataModelError: When enforcement would drop every resource.
    """
    packs = registry if registry is not None else PACKS
    entry = packs.get(spec.name)
    telemetry = obs.get()
    with telemetry.span("packs.build", pack=spec.name, seed=spec.seed):
        corpus = entry.build_corpus(spec.seed, **spec.params)
        telemetry.count("packs.generated_resources", len(corpus.dataset))
        corpus, report = run_filters(
            corpus, entry.filters, enforce=entry.enforce, pack=spec.name
        )
    telemetry.count("packs.built")
    return PackBuild(spec=spec, corpus=corpus, report=report)
