"""The registered corpus builders: legacy presets + new workload families.

The five legacy presets (``tiny``/``small``/``paper-default``/
``universe``/``figure1a``) are the former hard-coded
:mod:`repro.simulate.scenario` functions migrated onto the registry —
``scenario.py`` keeps thin back-compat wrappers that delegate here, so
every existing corpus stays byte-identical (the campaign trace fixtures
pin that).  Legacy packs run the quality pipeline in report-only mode
for the same reason.

The four new families come from the related work:

* ``capped-vocab`` — taggers pick from a capped tag vocabulary
  ("Limiting Tags Fosters Efficiency": constrained vocabularies
  concentrate rfds and speed convergence).
* ``adverse-selection`` — incentive-chasing taggers whose accept
  probability rises with the incentive level while their tag quality
  falls ("Incentivized Advertising: Treatment Effect and Adverse
  Selection").
* ``incentive-framing`` — how the reward is framed modulates tagger
  effort ("Qualitative Framing of Financial Incentives"): per-tag
  framing buys volume at the cost of noise, lottery framing buys
  minimal, imitative effort.
* ``budget-seeded`` — a budget-constrained seed selection: only the
  resources a bounded seeding budget covers carry any pre-cutoff posts
  ("Budgeted Influence Maximisation with Tags"), so allocation
  strategies face a cold-start population shaped by the seeding choice.

Every builder is deterministic in ``(seed, params)``; the determinism
fixtures in ``tests/fixtures/pack_fingerprints.json`` pin one corpus
fingerprint per pack and a cross-process test holds them across
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api.registry import Param
from repro.core.dataset import TaggingDataset
from repro.core.errors import DataModelError, NotStableError, SpecError
from repro.core.resources import Resource, ResourceSet
from repro.core.stability import PREPARATION_OMEGA, PREPARATION_TAU, practically_stable_rfd
from repro.packs.registry import register_pack
from repro.simulate.generator import (
    CorpusConfig,
    CorpusGenerator,
    GeneratedCorpus,
    generate_posts_for_model,
)
from repro.simulate.ontology import TopicHierarchy
from repro.simulate.popularity import PopularityConfig
from repro.simulate.resource_models import ResourceModel
from repro.simulate.taggers import TaggerBehavior

__all__ = [
    "filter_stable",
    "tiny_corpus",
    "small_corpus",
    "paper_corpus",
    "universe_corpus",
    "figure1a_corpus",
    "capped_vocab_corpus",
    "adverse_selection_corpus",
    "incentive_framing_corpus",
    "budget_seeded_corpus",
    "FRAMING_BEHAVIORS",
]


def filter_stable(corpus: GeneratedCorpus, n: int) -> GeneratedCorpus:
    """Keep the first ``n`` resources whose sequences reach stability.

    This mirrors the paper's dataset preparation: only resources whose
    full post sequence satisfies ``m(k, ω_s) > τ_s`` for some ``k``
    qualify for the evaluation.

    Raises:
        DataModelError: If fewer than ``n`` resources qualify (the
            caller should over-generate more).
    """
    kept: list[int] = []
    for index, resource in enumerate(corpus.dataset.resources):
        try:
            practically_stable_rfd(
                resource.sequence,
                PREPARATION_OMEGA,
                PREPARATION_TAU,
                resource_id=resource.resource_id,
            )
        except NotStableError:
            continue
        kept.append(index)
        if len(kept) == n:
            break
    if len(kept) < n:
        raise DataModelError(
            f"only {len(kept)} of {len(corpus.dataset)} generated resources reach "
            f"stability; requested {n} — increase the over-generation factor"
        )
    return GeneratedCorpus(
        dataset=corpus.dataset.subset(kept, name=corpus.dataset.name),
        models=[corpus.models[i] for i in kept],
        hierarchy=corpus.hierarchy,
        config=corpus.config,
    )


# ----------------------------------------------------------------------
# legacy presets (migrated from repro.simulate.scenario)
# ----------------------------------------------------------------------


@register_pack(
    "paper-default",
    family="paper",
    params={
        "n": Param(int, 600, "qualifying resources to keep"),
        "overgeneration": Param(float, 1.8, "candidates generated per kept resource"),
    },
    enforce=False,
    source="paper §V-A",
)
def paper_default(seed: int, *, n: int, overgeneration: float) -> GeneratedCorpus:
    """The Section V-A experiment corpus: stability-filtered, any scale."""
    return paper_corpus(n=n, seed=seed, overgeneration=overgeneration)


def paper_corpus(
    n: int = 600,
    seed: int = 0,
    *,
    overgeneration: float = 1.8,
    config: CorpusConfig | None = None,
) -> GeneratedCorpus:
    """The Section V-A experiment corpus (scaled).

    Generates ``overgeneration * n`` resources and keeps the first ``n``
    that reach stability under the stringent preparation parameters —
    the same selection the paper applies to its del.icio.us dump.  The
    paper runs on 5,000 resources; the default here is laptop-sized, and
    any scale is one argument away.

    Args:
        n: Number of qualifying resources to keep.
        seed: Corpus seed.
        overgeneration: How many candidate resources to generate per
            kept resource (the default stability pass rate is ~65%).
        config: Optional base config; its ``n_resources`` is overridden.

    Returns:
        A stability-filtered :class:`GeneratedCorpus` of exactly ``n``
        resources.
    """
    base = config or CorpusConfig()
    raw_n = max(n + 5, int(np.ceil(n * overgeneration)))
    generator = CorpusGenerator(
        CorpusConfig(
            n_resources=raw_n,
            year_days=base.year_days,
            cutoff_day=base.cutoff_day,
            popularity=base.popularity,
            aspects=base.aspects,
            tagger=base.tagger,
            name=f"paper-scale-{n}",
        ),
        seed=seed,
    )
    return filter_stable(generator.generate(), n)


@register_pack(
    "tiny",
    family="paper",
    enforce=False,
    source="paper §V (test scale)",
)
def tiny_pack(seed: int) -> GeneratedCorpus:
    """A ~25-resource unfiltered corpus for unit tests and doc snippets."""
    return tiny_corpus(seed=seed)


def tiny_corpus(seed: int = 0) -> GeneratedCorpus:
    """A ~25-resource corpus for unit tests and doc snippets (unfiltered)."""
    generator = CorpusGenerator(
        CorpusConfig(
            n_resources=25,
            popularity=PopularityConfig(min_posts=60, max_posts=200),
            name="tiny",
        ),
        seed=seed,
    )
    return generator.generate()


@register_pack(
    "small",
    family="paper",
    params={"n": Param(int, 80, "qualifying resources to keep")},
    enforce=False,
    source="paper §V-A (integration scale)",
)
def small_pack(seed: int, *, n: int) -> GeneratedCorpus:
    """A stability-filtered small corpus for integration tests."""
    return small_corpus(seed=seed, n=n)


def small_corpus(seed: int = 0, n: int = 80) -> GeneratedCorpus:
    """A stability-filtered small corpus for integration tests."""
    return paper_corpus(n=n, seed=seed, overgeneration=2.0)


@register_pack(
    "universe",
    family="paper",
    params={"n": Param(int, 5000, "population size")},
    enforce=False,
    source="paper §I / Fig 1(b)",
)
def universe_pack(seed: int, *, n: int) -> GeneratedCorpus:
    """The heavy-tailed population of Fig 1(b) and the Section I stats."""
    return universe_corpus(seed=seed, n=n)


def universe_corpus(seed: int = 0, n: int = 5000) -> GeneratedCorpus:
    """The heavy-tailed population of Fig 1(b) and the Section I stats.

    Most resources receive a single post; the head receives thousands.
    Use :meth:`TaggingDataset.posts_distribution` for the log-log
    histogram.
    """
    generator = CorpusGenerator(CorpusConfig(n_resources=n, name="universe"), seed=seed)
    return generator.generate_universe()


@register_pack(
    "figure1a",
    family="paper",
    params={"num_posts": Param(int, 500, "posts on the single resource")},
    enforce=False,
    source="paper Fig 1(a)",
)
def figure1a_pack(seed: int, *, num_posts: int) -> GeneratedCorpus:
    """A single Google-Earth-like resource (Fig 1(a)'s subject)."""
    return figure1a_corpus(seed=seed, num_posts=num_posts)


def figure1a_corpus(seed: int = 0, num_posts: int = 500) -> GeneratedCorpus:
    """A single Google-Earth-like resource (Fig 1(a)'s subject).

    The latent distribution is hand-set so the five tracked tags
    (google, maps, earth, software, travel) dominate, with a long tail
    of minor tags; 500 posts reproduce the convergence picture.
    """
    hierarchy = TopicHierarchy.from_taxonomy()
    head = {"google": 0.20, "maps": 0.16, "earth": 0.12, "software": 0.08, "travel": 0.05}
    tail_tags = [
        "geography", "satellite", "imagery", "globe", "gis", "3d", "flight",
        "cool", "reference", "tools", "free", "visualization", "world", "atlas",
        "navigation", "weather", "scenery", "photos", "terrain", "routes",
        "cities", "planet", "explore", "mapping", "aerial", "landmarks",
        "geo", "virtual", "sightseeing", "panorama", "streets", "borders",
        "countries", "elevation", "compass", "latitude", "longitude",
    ]
    # A long, fairly flat tail keeps the rfd jiggling for ~100 posts, so
    # the MA-score picture matches the paper's illustration timescales.
    tail_mass = 1.0 - sum(head.values())
    weights = np.array([1.0 / (r + 2) ** 0.7 for r in range(len(tail_tags))])
    weights = weights / weights.sum() * tail_mass
    distribution = dict(head)
    for tag, weight in zip(tail_tags, weights):
        distribution[tag] = float(weight)
    model = ResourceModel(
        resource_id="google-earth",
        title="earth.google.com",
        aspects=((("travel", "destinations"), 1.0),),
        distribution=distribution,
    )
    rng = np.random.default_rng(seed)
    timestamps = np.sort(rng.uniform(0.0, 365.0, size=num_posts))
    # Imitation (the Pólya-urn dynamic) gives the early rfd the slow
    # drift visible in the paper's Fig 1(a)/Fig 3 traces.
    behavior = TaggerBehavior(typo_rate=0.02, personal_rate=0.10, imitation_rate=0.35)
    sequence = generate_posts_for_model(model, timestamps, rng, behavior)
    resources = ResourceSet(
        [
            Resource(
                resource_id=model.resource_id,
                sequence=sequence,
                title=model.title,
                category=model.primary_category,
            )
        ]
    )
    config = CorpusConfig(n_resources=1, name="figure1a")
    return GeneratedCorpus(
        dataset=TaggingDataset(resources, name="figure1a"),
        models=[model],
        hierarchy=hierarchy,
        config=config,
    )


# ----------------------------------------------------------------------
# new workload families
# ----------------------------------------------------------------------


def _truncate_distribution(model: ResourceModel, cap: int) -> ResourceModel:
    """The model with its latent distribution capped to the top ``cap`` tags."""
    items = sorted(model.distribution.items(), key=lambda kv: (-kv[1], kv[0]))[:cap]
    total = sum(weight for _, weight in items)
    return dataclasses.replace(
        model, distribution={tag: weight / total for tag, weight in items}
    )


@register_pack(
    "capped-vocab",
    family="vocabulary-cap",
    params={
        "n": Param(int, 120, "corpus size"),
        "cap": Param(int, 6, "latent vocabulary cap per resource"),
    },
    source="Limiting Tags Fosters Efficiency",
)
def capped_vocab_pack(seed: int, *, n: int, cap: int) -> GeneratedCorpus:
    """Taggers pick from a capped per-resource tag vocabulary."""
    return capped_vocab_corpus(seed=seed, n=n, cap=cap)


def capped_vocab_corpus(seed: int = 0, n: int = 120, cap: int = 6) -> GeneratedCorpus:
    """A corpus whose resources expose only their top-``cap`` tags.

    Models a tagging UI that limits the offered vocabulary ("Limiting
    Tags Fosters Efficiency"): each latent distribution is truncated to
    its ``cap`` heaviest tags and renormalised, and the noise channels a
    selection UI rules out (free-text typos, personal tags, off-topic
    spam) are disabled.  Concentrated rfds stabilise early, so this is
    the cheap-convergence end of the workload spectrum.
    """
    if cap < 2:
        raise SpecError(f"capped-vocab cap must be >= 2, got {cap}")
    config = CorpusConfig(
        n_resources=n,
        popularity=PopularityConfig(min_posts=40, max_posts=260),
        tagger=TaggerBehavior(typo_rate=0.0, personal_rate=0.0, spam_rate=0.0),
        name=f"capped-vocab-{cap}",
    )
    return CorpusGenerator(config, seed=seed).generate(
        transform_model=lambda model, index: _truncate_distribution(model, cap)
    )


@register_pack(
    "adverse-selection",
    family="adverse-selection",
    params={
        "n": Param(int, 120, "corpus size"),
        "incentive": Param(float, 0.6, "incentive level in [0, 1]"),
    },
    source="Incentivized Advertising: Treatment Effect and Adverse Selection",
)
def adverse_selection_pack(seed: int, *, n: int, incentive: float) -> GeneratedCorpus:
    """Incentive-chasing taggers: more accepts, worse tags."""
    return adverse_selection_corpus(seed=seed, n=n, incentive=incentive)


def adverse_selection_corpus(
    seed: int = 0, n: int = 120, incentive: float = 0.6
) -> GeneratedCorpus:
    """A corpus tagged by an adversely-selected crowd.

    The incentive level pulls in two directions at once, the adverse
    selection of "Incentivized Advertising": raising it raises the
    accept probability — post counts scale up with the incentive — while
    the marginal tagger it attracts is worse: spam, typo and
    personal-tag rates climb, and the latent distributions flatten
    (tags chosen with less care), delaying every stable point.
    """
    if not 0.0 <= incentive <= 1.0:
        raise SpecError(
            f"adverse-selection incentive must lie in [0, 1], got {incentive}"
        )
    # Accept probability rises with the incentive: the same crowd
    # produces up to ~2.5x the posts at full incentive.
    uptake = 1.0 + 1.5 * incentive
    tagger = TaggerBehavior(
        typo_rate=0.01 + 0.06 * incentive,
        personal_rate=0.08 + 0.25 * incentive,
        spam_rate=0.004 + 0.12 * incentive,
    )
    config = CorpusConfig(
        n_resources=n,
        popularity=PopularityConfig(
            min_posts=int(round(60 * uptake)), max_posts=int(round(300 * uptake))
        ),
        tagger=tagger,
        name=f"adverse-selection-{incentive:.2f}",
    )
    # Tag quality falls with the incentive: flatten each latent
    # distribution by temperature (p -> p^(1/(1+2i)), renormalised).
    exponent = 1.0 / (1.0 + 2.0 * incentive)

    def flatten(model: ResourceModel, index: int) -> ResourceModel:
        flattened = {tag: weight**exponent for tag, weight in model.distribution.items()}
        total = sum(flattened.values())
        return dataclasses.replace(
            model, distribution={tag: w / total for tag, w in flattened.items()}
        )

    return CorpusGenerator(config, seed=seed).generate(transform_model=flatten)


FRAMING_BEHAVIORS: dict[str, TaggerBehavior] = {
    # Flat participation payment: the baseline crowd.
    "flat": TaggerBehavior(),
    # Paid per tag: volume-chasing effort — bigger posts, sloppier tags.
    "per-tag": TaggerBehavior(
        extra_tag_trials=8, extra_tag_prob=0.6, typo_rate=0.02, personal_rate=0.14
    ),
    # Lottery entry per post: minimal effort, heavy imitation of what is
    # already on the resource.
    "lottery": TaggerBehavior(
        extra_tag_trials=3, extra_tag_prob=0.35, imitation_rate=0.30
    ),
}
"""How each incentive framing modulates tagger effort."""


@register_pack(
    "incentive-framing",
    family="incentive-framing",
    params={
        "n": Param(int, 120, "corpus size"),
        "framing": Param(str, "per-tag", "one of flat / per-tag / lottery"),
    },
    source="Qualitative Framing of Financial Incentives",
)
def incentive_framing_pack(seed: int, *, n: int, framing: str) -> GeneratedCorpus:
    """Reward framing modulates tagger effort (volume vs imitation)."""
    return incentive_framing_corpus(seed=seed, n=n, framing=framing)


def incentive_framing_corpus(
    seed: int = 0, n: int = 120, framing: str = "per-tag"
) -> GeneratedCorpus:
    """A corpus whose crowd effort follows the reward framing.

    "Qualitative Framing of Financial Incentives" finds the *description*
    of a reward changes effort as much as its size.  Each framing maps to
    a :class:`TaggerBehavior`: ``flat`` is the baseline crowd, ``per-tag``
    buys volume at the cost of noise, ``lottery`` buys minimal imitative
    effort (the Pólya-urn dynamic dominates, slowing convergence).
    """
    behavior = FRAMING_BEHAVIORS.get(framing)
    if behavior is None:
        raise SpecError(
            f"unknown incentive framing {framing!r}; known framings: "
            f"{', '.join(sorted(FRAMING_BEHAVIORS))}"
        )
    config = CorpusConfig(
        n_resources=n,
        popularity=PopularityConfig(min_posts=50, max_posts=280),
        tagger=behavior,
        name=f"incentive-framing-{framing}",
    )
    return CorpusGenerator(config, seed=seed).generate()


@register_pack(
    "budget-seeded",
    family="budget-seeding",
    params={
        "n": Param(int, 150, "corpus size"),
        "seeds": Param(int, 30, "resources the seeding budget covers"),
    },
    source="Budgeted Influence Maximisation with Tags",
)
def budget_seeded_pack(seed: int, *, n: int, seeds: int) -> GeneratedCorpus:
    """Only a budget-constrained seed set carries pre-cutoff posts."""
    return budget_seeded_corpus(seed=seed, n=n, seeds=seeds)


def budget_seeded_corpus(
    seed: int = 0, n: int = 150, seeds: int = 30
) -> GeneratedCorpus:
    """A corpus where a bounded seeding budget decides the initial state.

    Models budget-constrained seed selection ("Budgeted Influence
    Maximisation with Tags"): a seeding budget covers only ``seeds``
    resources, chosen greedily by expected popularity (total post
    count, ties to the lower index).  Seeded resources keep their drawn
    initial posts (at least one); the rest start completely cold, so
    allocation strategies face the sharpest possible under-tagged
    population at the cutoff.
    """
    if seeds < 1:
        raise SpecError(f"budget-seeded seeds must be >= 1, got {seeds}")

    def seed_selection(totals: np.ndarray, initials: np.ndarray) -> np.ndarray:
        chosen = np.argsort(-totals, kind="stable")[:seeds]
        adjusted = np.zeros_like(initials)
        adjusted[chosen] = np.maximum(initials[chosen], 1)
        return adjusted

    config = CorpusConfig(
        n_resources=n,
        popularity=PopularityConfig(min_posts=60, max_posts=400),
        name=f"budget-seeded-{seeds}",
    )
    return CorpusGenerator(config, seed=seed).generate(adjust_initials=seed_selection)
