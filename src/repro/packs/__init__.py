"""repro.packs — the declarative scenario-pack registry + corpus quality pipeline.

One way to ask for a corpus, by name::

    from repro.packs import PACKS, PackSpec, build_pack

    build = build_pack(PackSpec(name="adverse-selection", seed=3,
                                params={"incentive": 0.8}))
    build.corpus            # a GeneratedCorpus, quality-filtered
    print(build.report.render())

The pieces:

* **Registry** (:mod:`repro.packs.registry`) — corpus builders register
  themselves with declared :class:`~repro.api.registry.Param` schemas,
  exactly like allocation strategies; :data:`PACKS` is the process
  global.
* **Families** (:mod:`repro.packs.families`) — the five legacy presets
  (migrated from :mod:`repro.simulate.scenario`, which keeps thin
  wrappers) plus four new workload families drawn from the related
  work.
* **Quality** (:mod:`repro.packs.quality`) — composable post-generation
  filters (duplicate fingerprints, degeneracy, vocabulary skew) whose
  verdict ships with every build as a :class:`QualityReport`.
* **Spec** (:mod:`repro.packs.spec`) — :class:`PackSpec`, the frozen
  JSON-round-tripping request; :class:`~repro.api.specs.CorpusSpec`
  embeds one via ``kind="pack"`` so a single JSON blob flows CLI →
  :func:`repro.api.run` → campaign → server job.

Importing this package populates the registry (the family modules
register at definition time).
"""

from __future__ import annotations

from repro.packs.families import FRAMING_BEHAVIORS
from repro.packs.quality import (
    FILTERS,
    FilterOutcome,
    QualityReport,
    corpus_fingerprint,
    resource_fingerprint,
    run_filters,
)
from repro.packs.registry import (
    DEFAULT_FILTERS,
    PACKS,
    PackRegistry,
    RegisteredPack,
    register_pack,
)
from repro.packs.spec import PackBuild, PackSpec, build_pack

__all__ = [
    "DEFAULT_FILTERS",
    "FILTERS",
    "FRAMING_BEHAVIORS",
    "FilterOutcome",
    "PACKS",
    "PackBuild",
    "PackRegistry",
    "PackSpec",
    "QualityReport",
    "RegisteredPack",
    "build_pack",
    "corpus_fingerprint",
    "register_pack",
    "resource_fingerprint",
    "run_filters",
]
