"""The corpus quality pipeline: composable post-generation filters.

Synthetic workload families can (deliberately or accidentally) produce
pathological resources — duplicated content, empty or single-tag
sequences, resources too short to ever satisfy the stability definition,
vocabularies so skewed the rfd is a delta function.  Every pack build
runs a declared set of filters over the generated corpus and records a
:class:`QualityReport`; packs that declare ``enforce=True`` drop the
flagged resources, legacy presets report only (their corpora are pinned
byte-identical by existing trace fixtures).

**Order invariance by construction**: each filter inspects the *full*
generated corpus independently and the flagged index sets are unioned,
so the kept set — and therefore the corpus fingerprint — is identical
for every filter ordering.  (A sequential pipeline would not be: if the
degeneracy filter dropped the first member of a duplicate group, the
duplicate filter would then keep the second.)

Content fingerprints are stable SHA-256 hashes of the canonical post
payload (sorted tags, rounded timestamps), so they are identical across
processes, platforms and ``PYTHONHASHSEED`` values — the same bar the
cross-process determinism tests hold the generator itself to.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro import obs
from repro.core.errors import DataModelError, SpecError
from repro.core.stability import DEFAULT_OMEGA

__all__ = [
    "FilterOutcome",
    "QualityReport",
    "FILTERS",
    "resource_fingerprint",
    "corpus_fingerprint",
    "run_filters",
]

MIN_STABILIZABLE_POSTS = DEFAULT_OMEGA
"""Resources with fewer posts than the MA window can never present a
moving-average score, let alone cross a stability threshold."""

MAX_DOMINANT_SHARE = 0.95
"""Vocabulary-skew bound: a resource whose single most frequent tag
carries more than this share of all its tag assignments has a
near-degenerate rfd (stability is trivially reached, carrying no
signal for allocation experiments)."""


def resource_fingerprint(resource) -> str:
    """A stable content hash of one resource's post sequence.

    The payload is canonical — sorted tags per post, timestamps rounded
    to 9 decimals — so identical content always hashes identically,
    independent of tag-set iteration order or float repr drift.
    """
    payload = [
        [round(post.timestamp, 9), sorted(post.tags)] for post in resource.sequence
    ]
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":")).encode()
    ).hexdigest()


def corpus_fingerprint(corpus) -> str:
    """A stable content hash of a whole corpus (ids + per-resource hashes)."""
    digest = hashlib.sha256()
    for resource in corpus.dataset.resources:
        digest.update(resource.resource_id.encode())
        digest.update(resource_fingerprint(resource).encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# filters
# ----------------------------------------------------------------------


def _filter_duplicates(corpus) -> dict[int, str]:
    """Flag every resource whose content duplicates an earlier one."""
    seen: dict[str, int] = {}
    flagged: dict[int, str] = {}
    for index, resource in enumerate(corpus.dataset.resources):
        fingerprint = resource_fingerprint(resource)
        first = seen.setdefault(fingerprint, index)
        if first != index:
            other = corpus.dataset.resources[first].resource_id
            flagged[index] = f"duplicate of {other!r} (fingerprint {fingerprint[:12]})"
    return flagged


def _filter_degenerate(corpus) -> dict[int, str]:
    """Flag empty, single-tag, and never-stabilizable resources."""
    flagged: dict[int, str] = {}
    for index, resource in enumerate(corpus.dataset.resources):
        n_posts = len(resource.sequence)
        if n_posts == 0:
            flagged[index] = "empty post sequence"
            continue
        if n_posts < MIN_STABILIZABLE_POSTS:
            flagged[index] = (
                f"never stabilizable: {n_posts} posts < "
                f"MA window {MIN_STABILIZABLE_POSTS}"
            )
            continue
        vocabulary = set()
        for post in resource.sequence:
            vocabulary.update(post.tags)
            if len(vocabulary) > 1:
                break
        if len(vocabulary) <= 1:
            only = next(iter(vocabulary))
            flagged[index] = f"single-tag vocabulary ({only!r})"
    return flagged


def _filter_vocab_skew(corpus) -> dict[int, str]:
    """Flag resources whose dominant tag exceeds the skew bound."""
    flagged: dict[int, str] = {}
    for index, resource in enumerate(corpus.dataset.resources):
        counts: dict[str, int] = {}
        total = 0
        for post in resource.sequence:
            for tag in post.tags:
                counts[tag] = counts.get(tag, 0) + 1
                total += 1
        if total == 0 or len(counts) <= 1:
            continue  # the degeneracy filter owns empty/single-tag cases
        top = max(counts.values())
        share = top / total
        if share > MAX_DOMINANT_SHARE:
            tag = min(t for t, c in counts.items() if c == top)
            flagged[index] = (
                f"vocabulary skew: tag {tag!r} carries {share:.3f} of "
                f"assignments (bound {MAX_DOMINANT_SHARE})"
            )
    return flagged


FILTERS: dict[str, Callable[..., dict[int, str]]] = {
    "duplicates": _filter_duplicates,
    "degenerate": _filter_degenerate,
    "vocab-skew": _filter_vocab_skew,
}
"""Registered quality filters, by the names packs declare."""


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FilterOutcome:
    """One filter's verdict over the full generated corpus.

    Attributes:
        name: Filter name.
        flagged: Flagged resource count.
        reasons: ``resource_id -> reason`` for every flagged resource.
    """

    name: str
    flagged: int
    reasons: Mapping[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "flagged": self.flagged,
            "reasons": dict(sorted(self.reasons.items())),
        }


@dataclass(frozen=True)
class QualityReport:
    """What the quality pipeline saw and did for one pack build.

    Attributes:
        pack: Pack name ("" for ad-hoc :func:`run_filters` calls).
        generated: Resource count before filtering.
        kept: Resource count after filtering.
        dropped: Resources removed (always 0 when ``enforced`` is off).
        enforced: Whether flagged resources were actually dropped.
        outcomes: Per-filter verdicts, in declared order.
        fingerprint: Content hash of the *surviving* corpus — the value
            pinned by the determinism fixtures.
        distinct_tags: Corpus vocabulary size after filtering.
        total_assignments: Tag assignments after filtering.
        top_tag_share: Share of the most frequent tag after filtering.
    """

    pack: str
    generated: int
    kept: int
    dropped: int
    enforced: bool
    outcomes: tuple[FilterOutcome, ...]
    fingerprint: str
    distinct_tags: int
    total_assignments: int
    top_tag_share: float

    def to_dict(self) -> dict:
        return {
            "pack": self.pack,
            "generated": self.generated,
            "kept": self.kept,
            "dropped": self.dropped,
            "enforced": self.enforced,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
            "fingerprint": self.fingerprint,
            "distinct_tags": self.distinct_tags,
            "total_assignments": self.total_assignments,
            "top_tag_share": self.top_tag_share,
        }

    def render(self) -> str:
        """A human-readable multi-line summary."""
        mode = "drop" if self.enforced else "report-only"
        lines = [
            f"quality [{mode}]: generated {self.generated}, "
            f"kept {self.kept}, dropped {self.dropped}"
        ]
        for outcome in self.outcomes:
            lines.append(f"  {outcome.name}: {outcome.flagged} flagged")
            for resource_id, reason in sorted(outcome.reasons.items())[:5]:
                lines.append(f"    {resource_id}: {reason}")
            if len(outcome.reasons) > 5:
                lines.append(f"    ... and {len(outcome.reasons) - 5} more")
        lines.append(
            f"  vocabulary: {self.distinct_tags} distinct tags over "
            f"{self.total_assignments} assignments "
            f"(top tag share {self.top_tag_share:.3f})"
        )
        lines.append(f"  fingerprint: {self.fingerprint[:16]}")
        return "\n".join(lines)


def _vocab_stats(corpus) -> tuple[int, int, float]:
    counts: dict[str, int] = {}
    total = 0
    for resource in corpus.dataset.resources:
        for post in resource.sequence:
            for tag in post.tags:
                counts[tag] = counts.get(tag, 0) + 1
                total += 1
    if not counts:
        return 0, 0, 0.0
    return len(counts), total, max(counts.values()) / total


# ----------------------------------------------------------------------
# pipeline
# ----------------------------------------------------------------------


def run_filters(
    corpus,
    filters: Iterable[str],
    *,
    enforce: bool = True,
    pack: str = "",
):
    """Run quality filters over a generated corpus.

    Every filter inspects the full input corpus; flagged index sets are
    unioned, so the result is invariant under filter ordering.

    Args:
        corpus: A :class:`~repro.simulate.generator.GeneratedCorpus`.
        filters: Filter names from :data:`FILTERS`, run in order (order
            affects only the report's outcome listing, never the kept
            set).
        enforce: Drop flagged resources (``True``) or keep everything
            and only report.
        pack: Pack name recorded in the report and telemetry.

    Returns:
        ``(corpus, report)`` — the (possibly subset) corpus and its
        :class:`QualityReport`.

    Raises:
        SpecError: On an unknown filter name.
        DataModelError: When enforcement would drop every resource.
    """
    telemetry = obs.get()
    resources = corpus.dataset.resources
    n = len(resources)
    outcomes: list[FilterOutcome] = []
    flagged_union: set[int] = set()
    with telemetry.span("packs.quality", pack=pack, resources=n):
        for name in filters:
            try:
                filter_fn = FILTERS[name]
            except KeyError:
                raise SpecError(
                    f"unknown quality filter {name!r}; known filters: "
                    f"{', '.join(sorted(FILTERS))}"
                ) from None
            flagged = filter_fn(corpus)
            flagged_union.update(flagged)
            outcomes.append(
                FilterOutcome(
                    name=name,
                    flagged=len(flagged),
                    reasons={
                        resources[index].resource_id: reason
                        for index, reason in flagged.items()
                    },
                )
            )
            telemetry.count(f"packs.filter.{name}.flagged", len(flagged))
    if enforce and flagged_union:
        kept_indices = [i for i in range(n) if i not in flagged_union]
        if not kept_indices:
            raise DataModelError(
                f"pack {pack or '(ad-hoc)'}: quality filters flagged all "
                f"{n} generated resources; relax the pack's parameters"
            )
        corpus = corpus.subset(kept_indices)
    kept = len(corpus.dataset)
    dropped = n - kept
    telemetry.count("packs.checked_resources", n)
    telemetry.count("packs.dropped_resources", dropped)
    distinct_tags, total_assignments, top_share = _vocab_stats(corpus)
    report = QualityReport(
        pack=pack,
        generated=n,
        kept=kept,
        dropped=dropped,
        enforced=enforce,
        outcomes=tuple(outcomes),
        fingerprint=corpus_fingerprint(corpus),
        distinct_tags=distinct_tags,
        total_assignments=total_assignments,
        top_tag_share=top_share,
    )
    return corpus, report
