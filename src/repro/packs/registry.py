"""The scenario-pack registry: declared corpus builders instead of hard-coded presets.

Before this module existed, scenario diversity was whatever
:mod:`repro.simulate.scenario` hard-coded — ``paper_scenario``,
``figure1a_scenario``, ... — and anything that wanted a corpus by name
had to know the function, its signature, and its defaults.  Here every
corpus family instead **registers** itself, exactly the way allocation
strategies register with :class:`repro.api.registry.StrategyRegistry`::

    @register_pack(
        "capped-vocab",
        family="vocabulary-cap",
        params={"n": Param(int, 120, "corpus size"),
                "cap": Param(int, 6, "tags per resource")},
    )
    def capped_vocab(seed: int, *, n: int, cap: int) -> GeneratedCorpus:
        ...

so :meth:`PackRegistry.get` can validate names and parameters up front
and raise one precise :class:`~repro.core.errors.SpecError` listing the
registered packs, instead of a bare ``KeyError`` downstream.

The process-global default registry is :data:`PACKS`; it is fully
populated as a side effect of importing :mod:`repro.packs` (the family
modules register themselves at function-definition time).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.api.registry import Param
from repro.core.errors import SpecError

__all__ = ["RegisteredPack", "PackRegistry", "PACKS", "register_pack"]

DEFAULT_FILTERS = ("duplicates", "degenerate", "vocab-skew")
"""The quality filters a pack runs unless it declares its own set."""


@dataclass(frozen=True)
class RegisteredPack:
    """A registry entry: the builder plus its declared parameter schema.

    Attributes:
        name: Public pack name (``"paper-default"``, ``"capped-vocab"``).
        family: Workload family label (groups related packs in listings).
        builder: ``(seed, **params) -> GeneratedCorpus``; must be
            deterministic in ``seed`` and the parameters.
        params: Declared builder parameters (name -> :class:`Param`).
        filters: Quality-filter names run post-generation, in order.
        enforce: Whether flagged resources are dropped (``True``) or
            only reported (``False`` — the legacy presets, whose corpora
            are pinned byte-identical by existing trace fixtures).
        doc: One-line description for listings.
        source: Where the workload comes from (paper section or related
            work title).
    """

    name: str
    family: str
    builder: Callable[..., Any]
    params: Mapping[str, Param] = field(default_factory=dict)
    filters: tuple[str, ...] = DEFAULT_FILTERS
    enforce: bool = True
    doc: str = ""
    source: str = ""

    def validate_params(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Type-check ``overrides`` and fill declared defaults.

        Raises:
            SpecError: On an undeclared parameter name or a value that
                fails its declared type.
        """
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            declared = ", ".join(sorted(self.params)) or "(none)"
            raise SpecError(
                f"pack {self.name!r} does not declare parameter(s) "
                f"{', '.join(repr(u) for u in unknown)}; declared: {declared}"
            )
        resolved: dict[str, Any] = {}
        for pname, spec in self.params.items():
            value = overrides.get(pname, spec.default)
            resolved[pname] = spec.validate(pname, value, self.name)
        return resolved

    def build_corpus(self, seed: int, **overrides: Any):
        """Run the builder with validated parameters (defaults filled)."""
        return self.builder(seed, **self.validate_params(overrides))

    def defaults(self) -> dict[str, Any]:
        """The declared parameter defaults."""
        return {name: spec.default for name, spec in self.params.items()}


class PackRegistry:
    """Name -> scenario pack mapping with declared parameter schemas.

    The registry is the single source of truth for "which corpus
    workloads exist and how they are parameterised": the CLI's ``packs``
    verbs derive their listings from :meth:`entries`, a
    :class:`~repro.api.specs.CorpusSpec` with ``kind="pack"`` is
    validated against :meth:`get`, and the determinism fixtures iterate
    :meth:`names` so a new pack cannot ship without a pinned fingerprint.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RegisteredPack] = {}

    # -- registration ---------------------------------------------------

    def register(self, entry: RegisteredPack) -> None:
        """Register a pack.

        Raises:
            SpecError: On a duplicate or blank name.
        """
        if not entry.name or not isinstance(entry.name, str):
            raise SpecError(f"pack name must be a non-empty string, got {entry.name!r}")
        existing = self._entries.get(entry.name)
        if existing is not None:
            raise SpecError(
                f"pack name {entry.name!r} already registered by "
                f"{existing.builder.__module__}.{existing.builder.__qualname__}"
            )
        self._entries[entry.name] = entry

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> RegisteredPack:
        """The entry for ``name``.

        Raises:
            SpecError: On an unknown name, listing the registered packs
                sorted — never a bare ``KeyError``.
        """
        entry = self._entries.get(name)
        if entry is None:
            raise SpecError(
                f"unknown scenario pack {name!r}; registered packs: "
                f"{', '.join(sorted(self._entries)) or '(none)'}"
            )
        return entry

    def names(self) -> list[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def entries(self) -> list[RegisteredPack]:
        """Registered packs, sorted by (family, name) for listings."""
        return sorted(self._entries.values(), key=lambda e: (e.family, e.name))

    def families(self) -> list[str]:
        """Distinct family labels, sorted."""
        return sorted({entry.family for entry in self._entries.values()})

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


PACKS = PackRegistry()
"""The process-global registry; populated by importing :mod:`repro.packs`."""


def register_pack(
    name: str,
    *,
    family: str,
    params: Mapping[str, Param] | None = None,
    filters: tuple[str, ...] = DEFAULT_FILTERS,
    enforce: bool = True,
    source: str = "",
    registry: PackRegistry | None = None,
):
    """Function decorator: register a corpus builder under ``name``.

    Args:
        name: Public pack name.
        family: Workload family label.
        params: Declared builder parameters (name -> :class:`Param`).
            Parameters *not* declared here cannot be set through the
            pack-spec path.
        filters: Quality filters to run post-generation (names from
            :data:`repro.packs.quality.FILTERS`).
        enforce: Drop flagged resources (``True``) or report only.
        source: Paper section / related-work title the family models.
        registry: Target registry (default: the global :data:`PACKS`).

    The builder's first line of docstring becomes the pack's ``doc``.
    """

    def decorate(builder: Callable[..., Any]) -> Callable[..., Any]:
        doc = (builder.__doc__ or "").strip().splitlines()
        entry = RegisteredPack(
            name=name,
            family=family,
            builder=builder,
            params=dict(params or {}),
            filters=tuple(filters),
            enforce=enforce,
            doc=doc[0] if doc else "",
            source=source,
        )
        (registry if registry is not None else PACKS).register(entry)
        return builder

    return decorate
