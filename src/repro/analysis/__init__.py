"""Analysis utilities: corpus health, rankings, rank correlation.

These are evaluation-side tools — they may consume ground truth (stable
points, full sequences) that allocation strategies are never shown.
"""

from repro.analysis.convergence import (
    convergence_half_life,
    distance_to_final_curve,
    effective_support,
    tag_entropy,
)
from repro.analysis.health import CorpusHealth, corpus_health
from repro.analysis.kendall import kendall_tau
from repro.analysis.ranking import (
    RankedResource,
    all_pairs_scores,
    overlap_at_k,
    top_k_similar,
)
from repro.analysis.stable_points import (
    UNDER_TAGGED_THRESHOLD,
    StablePointSummary,
    dataset_stable_points,
    measured_unstable_point,
    stable_point_of,
)
from repro.analysis.stats import DistributionSummary, pearson_correlation, summarize
from repro.analysis.waste import (
    WasteReport,
    salvage_requirement,
    waste_report,
    wasted_tasks,
)

__all__ = [
    "CorpusHealth",
    "DistributionSummary",
    "RankedResource",
    "convergence_half_life",
    "corpus_health",
    "distance_to_final_curve",
    "effective_support",
    "tag_entropy",
    "StablePointSummary",
    "UNDER_TAGGED_THRESHOLD",
    "WasteReport",
    "all_pairs_scores",
    "dataset_stable_points",
    "kendall_tau",
    "measured_unstable_point",
    "overlap_at_k",
    "pearson_correlation",
    "salvage_requirement",
    "stable_point_of",
    "summarize",
    "top_k_similar",
    "waste_report",
    "wasted_tasks",
]
