"""Corpus-level stable/unstable point analysis (Section I statistics).

The paper's introduction characterises a 5,000-URL sample: stable points
range from 50 to 200 posts (average 112), a typical unstable point is
about 10 posts, 7% of URLs are over-tagged, and 25% are under-tagged.
This module computes those statistics for any dataset.

The *unstable point* is only informally defined in the paper; Section
V-B3 operationalises it as "rfds are not stable below 10 posts — their
adjacent similarity is typically below 0.95".  We provide both readings:
the fixed 10-post threshold (used by every Fig 6(d)-style metric) and a
measured variant (the last post at which the adjacent similarity drops
below a threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.dataset import TaggingDataset
from repro.core.errors import NotStableError
from repro.core.posts import Post, PostSequence
from repro.core.stability import (
    PREPARATION_OMEGA,
    PREPARATION_TAU,
    adjacent_similarity_series,
    practically_stable_rfd,
)

__all__ = [
    "UNDER_TAGGED_THRESHOLD",
    "StablePointSummary",
    "stable_point_of",
    "dataset_stable_points",
    "measured_unstable_point",
]

UNDER_TAGGED_THRESHOLD = 10
"""The paper's operational unstable point: ≤ 10 posts = under-tagged."""


@dataclass(frozen=True)
class StablePointSummary:
    """Distributional summary of a dataset's stable points.

    Attributes:
        stable_points: Per-resource stable points (``-1`` where the
            sequence never stabilises).
        num_stable: Resources with a defined stable point.
        mean: Mean stable point over stable resources.
        minimum: Smallest stable point.
        maximum: Largest stable point.
    """

    stable_points: np.ndarray
    num_stable: int
    mean: float
    minimum: int
    maximum: int

    @classmethod
    def from_array(cls, stable_points: np.ndarray) -> StablePointSummary:
        defined = stable_points[stable_points >= 0]
        if len(defined) == 0:
            return cls(stable_points, 0, float("nan"), -1, -1)
        return cls(
            stable_points=stable_points,
            num_stable=int(len(defined)),
            mean=float(defined.mean()),
            minimum=int(defined.min()),
            maximum=int(defined.max()),
        )


def stable_point_of(
    posts: Sequence[Post] | PostSequence,
    omega: int = PREPARATION_OMEGA,
    tau: float = PREPARATION_TAU,
) -> int:
    """The stable point of one sequence, ``-1`` if never reached.

    Uses the paper's stringent preparation parameters by default (these
    define "over-tagged" throughout the evaluation).
    """
    try:
        k, _ = practically_stable_rfd(posts, omega, tau)
    except NotStableError:
        return -1
    return k


def dataset_stable_points(
    dataset: TaggingDataset,
    omega: int = PREPARATION_OMEGA,
    tau: float = PREPARATION_TAU,
) -> StablePointSummary:
    """Stable points for every resource in ``dataset``.

    Returns:
        A :class:`StablePointSummary`; resources that never stabilise
        hold ``-1`` in the array.
    """
    points = np.array(
        [stable_point_of(r.sequence, omega, tau) for r in dataset.resources],
        dtype=np.int64,
    )
    return StablePointSummary.from_array(points)


def measured_unstable_point(
    posts: Sequence[Post] | PostSequence,
    similarity_threshold: float = 0.95,
) -> int:
    """The measured unstable point of one sequence.

    Defined as the last post index at which the adjacent similarity is
    still below ``similarity_threshold`` (Section V-B3's reading: below
    this point the rfd is too jumpy to use).  Returns 0 when even the
    second post's similarity already clears the threshold.
    """
    series = adjacent_similarity_series(posts)
    last_below = 0
    # Skip j = 1: its adjacent similarity is 0 by definition (Eq. 16).
    for j, similarity in enumerate(series[1:], start=2):
        if similarity < similarity_threshold:
            last_below = j
    return last_below
