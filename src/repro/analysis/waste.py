"""Over-tagging, under-tagging and wasted posts (Figs 6(b)–(d), Section I).

Terminology, following the paper:

* a resource is **over-tagged** once its post count exceeds its stable
  point — further posts do not change its rfd in any practical way;
* a post (or post task) is **wasted** if it was given to a resource that
  had already passed its stable point at delivery time;
* a resource is **under-tagged** while its post count is at or below the
  unstable point (operationally, 10 posts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DataModelError
from repro.analysis.stable_points import UNDER_TAGGED_THRESHOLD

__all__ = ["WasteReport", "waste_report", "wasted_tasks", "salvage_requirement"]


@dataclass(frozen=True)
class WasteReport:
    """Tagging-health statistics for one state of a resource set.

    Attributes:
        over_tagged: Resources past their stable point.
        under_tagged: Resources at or below the under-tagged threshold.
        under_tagged_fraction: ``under_tagged / n``.
        wasted_posts: Posts delivered beyond stable points (see
            :func:`waste_report` for the exact accounting).
        total_posts: All posts in the examined state.
    """

    over_tagged: int
    under_tagged: int
    under_tagged_fraction: float
    wasted_posts: int
    total_posts: int

    @property
    def wasted_fraction(self) -> float:
        """Share of posts that were wasted (0 when there are no posts)."""
        if self.total_posts == 0:
            return 0.0
        return self.wasted_posts / self.total_posts


def waste_report(
    counts: np.ndarray,
    stable_points: np.ndarray,
    *,
    under_threshold: int = UNDER_TAGGED_THRESHOLD,
) -> WasteReport:
    """Health statistics of a post-count state.

    ``wasted_posts`` here counts every post beyond each resource's
    stable point (``Σ max(0, counts_i - sp_i)``) — the Section I
    accounting ("48% of all posts were given to URLs that had already
    passed their stable points").  For strategy-attributed waste (only
    the posts *a strategy delivered* onto over-tagged resources, Fig
    6(c)) use :func:`wasted_tasks`.

    Args:
        counts: Posts per resource.
        stable_points: Stable point per resource; ``-1`` (never
            stabilises) disables over-tagging/waste for that resource.
        under_threshold: The unstable point.

    Raises:
        DataModelError: On length mismatch.
    """
    counts = np.asarray(counts, dtype=np.int64)
    stable_points = np.asarray(stable_points, dtype=np.int64)
    if counts.shape != stable_points.shape:
        raise DataModelError("counts and stable_points must have equal length")
    has_sp = stable_points >= 0
    over = (counts > stable_points) & has_sp
    wasted = np.where(has_sp, np.maximum(0, counts - stable_points), 0)
    under = counts <= under_threshold
    n = len(counts)
    return WasteReport(
        over_tagged=int(over.sum()),
        under_tagged=int(under.sum()),
        under_tagged_fraction=float(under.sum()) / n if n else 0.0,
        wasted_posts=int(wasted.sum()),
        total_posts=int(counts.sum()),
    )


def wasted_tasks(
    initial_counts: np.ndarray,
    final_counts: np.ndarray,
    stable_points: np.ndarray,
) -> int:
    """Post *tasks* a strategy delivered onto already-over-tagged resources.

    A task on resource ``i`` is wasted if, at delivery, the resource's
    count was already ``>= sp_i`` — i.e. the post could not practically
    improve the rfd.  Because counts only grow, the wasted tasks on
    ``i`` are ``max(0, final_i - max(initial_i, sp_i))``.

    Args:
        initial_counts: Counts before the strategy ran.
        final_counts: Counts after.
        stable_points: Stable point per resource (``-1`` = never, no
            waste attributed).

    Returns:
        Total wasted tasks (Fig 6(c)'s y-axis).
    """
    initial_counts = np.asarray(initial_counts, dtype=np.int64)
    final_counts = np.asarray(final_counts, dtype=np.int64)
    stable_points = np.asarray(stable_points, dtype=np.int64)
    if not (initial_counts.shape == final_counts.shape == stable_points.shape):
        raise DataModelError("count/stable-point arrays must have equal length")
    if (final_counts < initial_counts).any():
        raise DataModelError("final counts cannot be below initial counts")
    has_sp = stable_points >= 0
    start = np.maximum(initial_counts, stable_points)
    wasted = np.where(has_sp, np.maximum(0, final_counts - start), 0)
    return int(wasted.sum())


def salvage_requirement(
    counts: np.ndarray,
    *,
    under_threshold: int = UNDER_TAGGED_THRESHOLD,
) -> int:
    """Posts needed to lift every under-tagged resource past the threshold.

    The Section I claim — "if only 1% of the wasted posts had been
    channeled to the under-tagged URLs, they would have passed their
    unstable points" — compares this number against 1% of
    :attr:`WasteReport.wasted_posts`.

    Args:
        counts: Posts per resource.
        under_threshold: The unstable point.

    Returns:
        ``Σ max(0, threshold + 1 - counts_i)`` over under-tagged resources.
    """
    counts = np.asarray(counts, dtype=np.int64)
    deficits = np.maximum(0, under_threshold + 1 - counts)
    return int(deficits.sum())
