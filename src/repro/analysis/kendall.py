"""Kendall's τ rank correlation (the Fig 7 accuracy metric).

The paper follows Markines et al. and evaluates a similarity measure by
ranking all resource pairs and correlating that ranking with a
ground-truth ranking via Kendall's τ.  Real rankings contain heavy ties
(both cosine scores and tree-distance ground truths repeat), so we
implement **τ-b**, the tie-adjusted variant:

    ``τ_b = (C - D) / sqrt((N - T_x) * (N - T_y))``

where ``C``/``D`` count concordant/discordant pairs, ``N = n(n-1)/2``,
and ``T_x``/``T_y`` count pairs tied in each input.  Discordance is
counted in ``O(n log n)`` with a merge-sort inversion count; tests
cross-check against :func:`scipy.stats.kendalltau`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import DataModelError

__all__ = ["kendall_tau"]


def _count_inversions(values: list[float]) -> int:
    """Number of (i, j) with ``i < j`` and ``values[i] > values[j]``.

    Iterative bottom-up merge sort; strictly-greater comparisons mean
    ties contribute no inversions (they are handled separately).
    """
    n = len(values)
    inversions = 0
    width = 1
    current = list(values)
    buffer = [0.0] * n
    while width < n:
        for start in range(0, n, 2 * width):
            middle = min(start + width, n)
            end = min(start + 2 * width, n)
            left, right = start, middle
            position = start
            while left < middle and right < end:
                if current[left] <= current[right]:
                    buffer[position] = current[left]
                    left += 1
                else:
                    inversions += middle - left
                    buffer[position] = current[right]
                    right += 1
                position += 1
            buffer[position : position + (middle - left)] = current[left:middle]
            position += middle - left
            buffer[position : position + (end - right)] = current[right:end]
        current, buffer = buffer, current
        width *= 2
    return inversions


def _tie_statistics(sorted_values: np.ndarray) -> int:
    """``Σ t(t-1)/2`` over groups of equal values (input must be sorted)."""
    total = 0
    run = 1
    for previous, value in zip(sorted_values, sorted_values[1:]):
        if value == previous:
            run += 1
        else:
            total += run * (run - 1) // 2
            run = 1
    total += run * (run - 1) // 2
    return total


def kendall_tau(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Kendall's τ-b between two paired score vectors.

    Args:
        x: First score vector (e.g. cosine similarities of all pairs).
        y: Second score vector (e.g. ground-truth similarities).

    Returns:
        τ-b in ``[-1, 1]``; ``nan`` when either vector is constant
        (correlation undefined).

    Raises:
        DataModelError: On length mismatch or fewer than 2 items.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise DataModelError("inputs must be 1-D arrays of equal length")
    n = len(x)
    if n < 2:
        raise DataModelError("Kendall's tau needs at least 2 items")

    # Sort by x, breaking x-ties by y: discordant pairs are then exactly
    # the y-inversions among pairs NOT tied in x.
    order = np.lexsort((y, x))
    x_sorted = x[order]
    y_sorted = y[order]

    total_pairs = n * (n - 1) // 2
    ties_x = _tie_statistics(x_sorted)
    ties_y = _tie_statistics(np.sort(y))

    # Pairs tied in both x and y.
    both = np.lexsort((y, x))
    ties_xy = 0
    run = 1
    for a, b in zip(both, both[1:]):
        if x[a] == x[b] and y[a] == y[b]:
            run += 1
        else:
            ties_xy += run * (run - 1) // 2
            run = 1
    ties_xy += run * (run - 1) // 2

    discordant = _count_inversions(list(y_sorted))
    # Within x-tie groups sorted ascending by y there are no y-inversions,
    # so `discordant` already excludes x-tied pairs.
    concordant = total_pairs - discordant - ties_x - ties_y + ties_xy

    denominator = np.sqrt(
        float(total_pairs - ties_x) * float(total_pairs - ties_y)
    )
    if denominator == 0.0:
        return float("nan")
    return float((concordant - discordant) / denominator)
