"""Resource–resource similarity rankings (Section V-C case studies).

The fundamental IR operation the paper's case studies exercise: given a
subject resource, rank all other resources by the cosine similarity of
their rfds and inspect the top-10.  The quality of a list is judged by
its overlap with the "ideal" list derived from the full year's posts.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

from repro.core.errors import DataModelError
from repro.core.similarity import cosine

__all__ = ["RankedResource", "top_k_similar", "overlap_at_k", "all_pairs_scores"]

SparseVector = Mapping[str, float]


@dataclass(frozen=True)
class RankedResource:
    """One row of a top-k result.

    Attributes:
        resource_id: The ranked resource.
        score: Its similarity to the subject.
    """

    resource_id: str
    score: float


def top_k_similar(
    subject_rfd: SparseVector,
    candidates: Mapping[str, SparseVector],
    k: int = 10,
    metric: Callable[[SparseVector, SparseVector], float] = cosine,
) -> list[RankedResource]:
    """The ``k`` resources most similar to a subject.

    Args:
        subject_rfd: The subject's rfd.
        candidates: ``resource_id -> rfd`` for every candidate (exclude
            the subject itself before calling).
        k: List length.
        metric: Similarity metric (cosine by Eq. 16; swappable for the
            metric ablation).

    Returns:
        Top-``k`` rows, highest score first; ties broken by id so the
        output is deterministic.
    """
    if k < 1:
        raise DataModelError(f"k must be positive, got {k}")
    scored = [
        RankedResource(resource_id, metric(subject_rfd, rfd))
        for resource_id, rfd in candidates.items()
    ]
    scored.sort(key=lambda row: (-row.score, row.resource_id))
    return scored[:k]


def overlap_at_k(
    result: Sequence[RankedResource] | Sequence[str],
    reference: Sequence[RankedResource] | Sequence[str],
) -> int:
    """How many members two top-k lists share (the Table VI "9 of 10").

    Args:
        result: A top-k list (rows or bare ids).
        reference: The ideal list to compare against.

    Returns:
        Size of the id intersection.
    """

    def ids(rows: Sequence[RankedResource] | Sequence[str]) -> set[str]:
        return {row.resource_id if isinstance(row, RankedResource) else row for row in rows}

    return len(ids(result) & ids(reference))


def all_pairs_scores(
    rfds: Sequence[SparseVector],
    metric: Callable[[SparseVector, SparseVector], float] = cosine,
) -> list[float]:
    """Similarity for every unordered resource pair, in ``(i, j), i < j`` order.

    The Fig 7 accuracy metric correlates this vector against the
    ground-truth pair similarities (same order).

    Args:
        rfds: One rfd per resource.
        metric: Similarity metric.
    """
    scores: list[float] = []
    for i in range(len(rfds)):
        for j in range(i + 1, len(rfds)):
            scores.append(metric(rfds[i], rfds[j]))
    return scores
