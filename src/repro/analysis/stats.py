"""Small statistics helpers used across the experiment reports.

:func:`pearson_correlation` is Eq. 15 of the paper (used to back the
Fig 7(b) claim that tagging quality and similarity-ranking accuracy
correlate at over 98%); the rest are convenience summaries for the
dataset reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.errors import DataModelError

__all__ = ["pearson_correlation", "DistributionSummary", "summarize"]


def pearson_correlation(
    x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray
) -> float:
    """Sample Pearson correlation (Eq. 15).

    Args:
        x: First sample.
        y: Second sample (paired with ``x``).

    Returns:
        Correlation in ``[-1, 1]``; ``nan`` if either sample is constant.

    Raises:
        DataModelError: On length mismatch or fewer than 2 points.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise DataModelError("inputs must be 1-D arrays of equal length")
    if len(x) < 2:
        raise DataModelError("correlation needs at least 2 points")
    sx = x.std(ddof=1)
    sy = y.std(ddof=1)
    if sx == 0.0 or sy == 0.0:
        return float("nan")
    covariance = float(((x - x.mean()) * (y - y.mean())).sum()) / (len(x) - 1)
    return covariance / (sx * sy)


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-style summary of a sample.

    Attributes:
        count: Sample size.
        mean: Arithmetic mean.
        minimum: Smallest value.
        p25: First quartile.
        median: Median.
        p75: Third quartile.
        maximum: Largest value.
    """

    count: int
    mean: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"n={self.count} mean={self.mean:.1f} min={self.minimum:.0f} "
            f"p25={self.p25:.0f} median={self.median:.0f} p75={self.p75:.0f} "
            f"max={self.maximum:.0f}"
        )


def summarize(values: Sequence[float] | np.ndarray) -> DistributionSummary:
    """Summarise a non-empty sample.

    Raises:
        DataModelError: For empty input.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise DataModelError("cannot summarise an empty sample")
    return DistributionSummary(
        count=int(values.size),
        mean=float(values.mean()),
        minimum=float(values.min()),
        p25=float(np.percentile(values, 25)),
        median=float(np.percentile(values, 50)),
        p75=float(np.percentile(values, 75)),
        maximum=float(values.max()),
    )
