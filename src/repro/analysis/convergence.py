"""rfd convergence diagnostics.

The stability machinery answers "has this rfd settled?"; these
diagnostics answer *why* and *how fast* — useful when tuning incentive
campaigns and when validating that a synthetic corpus behaves like a
real one:

* :func:`tag_entropy` / :func:`effective_support` — how wide a
  description is (wide rfds need more posts; the Fig 5 mechanism);
* :func:`distance_to_final_curve` — cosine distance of every prefix rfd
  to the final rfd (the convergence trajectory behind Fig 1(a));
* :func:`convergence_half_life` — the prefix length after which the
  distance to the final rfd stays below half its initial value.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.errors import DataModelError
from repro.core.frequency import TagFrequencyTable
from repro.core.posts import Post, PostSequence

__all__ = [
    "tag_entropy",
    "effective_support",
    "distance_to_final_curve",
    "convergence_half_life",
]


def tag_entropy(rfd: Mapping[str, float]) -> float:
    """Shannon entropy (nats) of an rfd.

    Args:
        rfd: A tag distribution; non-positive entries are ignored.

    Returns:
        Entropy in nats; 0 for empty or single-tag distributions.
    """
    total = sum(w for w in rfd.values() if w > 0)
    if total <= 0:
        return 0.0
    entropy = 0.0
    for weight in rfd.values():
        if weight > 0:
            p = weight / total
            entropy -= p * math.log(p)
    return entropy


def effective_support(rfd: Mapping[str, float]) -> float:
    """Perplexity ``exp(H)`` — the "effective number of tags".

    A resource whose rfd has effective support 4 behaves like a uniform
    4-tag description; wider support predicts a later stable point.
    """
    return math.exp(tag_entropy(rfd))


def distance_to_final_curve(posts: Sequence[Post] | PostSequence) -> np.ndarray:
    """``1 - cos(F(k), F(K))`` for every prefix ``k = 1..K``.

    The curve starts high (early rfds misrepresent the resource) and
    decays toward 0 — the quantitative form of Fig 1(a)'s convergence.

    Raises:
        DataModelError: For an empty sequence.
    """
    if len(posts) == 0:
        raise DataModelError("convergence curve needs at least one post")
    final = TagFrequencyTable.from_posts(posts).rfd()
    table = TagFrequencyTable()
    distances = np.zeros(len(posts))
    for k, post in enumerate(posts):
        table.add_post(post.tags)
        distances[k] = 1.0 - table.cosine_to(final)
    return distances


def convergence_half_life(posts: Sequence[Post] | PostSequence) -> int:
    """Smallest ``k`` after which the distance-to-final stays below half
    of the first post's distance.

    "Stays below" is the operative part — a lucky early prefix that later
    drifts away again does not count.  Returns ``len(posts)`` when the
    sequence never settles below the threshold.
    """
    distances = distance_to_final_curve(posts)
    threshold = distances[0] / 2.0
    # Walk backwards: find the last index that violates the threshold.
    for k in range(len(distances) - 1, -1, -1):
        if distances[k] > threshold:
            return min(k + 2, len(distances))
    return 1
