"""Corpus health reports: the Section I story for any dataset.

:func:`corpus_health` bundles the stable-point, waste and convergence
analyses into a single structured report with a markdown rendering —
the operational view a tagging-system owner would look at before
funding an incentive campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import TaggingDataset
from repro.core.frequency import TagFrequencyTable
from repro.analysis.convergence import effective_support
from repro.analysis.stable_points import (
    UNDER_TAGGED_THRESHOLD,
    StablePointSummary,
    dataset_stable_points,
)
from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.waste import WasteReport, salvage_requirement, waste_report

__all__ = ["CorpusHealth", "corpus_health"]


@dataclass(frozen=True)
class CorpusHealth:
    """A full health report for one corpus state.

    Attributes:
        name: Dataset label.
        n: Number of resources.
        total_posts: Posts in the examined state.
        stable_points: Stable-point distribution (``-1`` = never).
        waste: Over/under-tagging and wasted posts at this state.
        salvage_posts: Posts needed to lift all under-tagged resources
            past the unstable point.
        support: Distribution of effective rfd supports.
        posts_summary: Distribution of posts per resource.
    """

    name: str
    n: int
    total_posts: int
    stable_points: StablePointSummary
    waste: WasteReport
    salvage_posts: int
    support: DistributionSummary
    posts_summary: DistributionSummary

    def render(self) -> str:
        lines = [
            f"# corpus health: {self.name}",
            f"resources: {self.n}, posts: {self.total_posts}",
            f"posts/resource: {self.posts_summary.render()}",
            f"effective rfd support: {self.support.render()}",
        ]
        if self.stable_points.num_stable:
            lines.append(
                f"stable points: mean={self.stable_points.mean:.0f} "
                f"range=[{self.stable_points.minimum}, {self.stable_points.maximum}] "
                f"({self.stable_points.num_stable}/{self.n} resources stabilise)"
            )
        else:
            lines.append("stable points: no resource stabilises")
        lines.extend(
            [
                f"over-tagged: {self.waste.over_tagged} "
                f"({100.0 * self.waste.over_tagged / self.n:.1f}%)",
                f"under-tagged: {self.waste.under_tagged} "
                f"({100.0 * self.waste.under_tagged_fraction:.1f}%)",
                f"wasted posts: {self.waste.wasted_posts} "
                f"({100.0 * self.waste.wasted_fraction:.1f}% of all posts)",
                f"salvage requirement: {self.salvage_posts} posts "
                f"({self._salvage_share()})",
            ]
        )
        return "\n".join(lines)

    def _salvage_share(self) -> str:
        if self.waste.wasted_posts == 0:
            return "no wasted posts to redirect"
        share = self.salvage_posts / self.waste.wasted_posts
        return f"{100.0 * share:.1f}% of the wasted posts"


def corpus_health(
    dataset: TaggingDataset,
    *,
    under_threshold: int = UNDER_TAGGED_THRESHOLD,
) -> CorpusHealth:
    """Compute a full health report for ``dataset``.

    Stable points use the paper's stringent preparation parameters;
    counts are the dataset's current (full) sequences — split the
    dataset first to report on a cutoff state.

    Args:
        dataset: The corpus to examine.
        under_threshold: The unstable point.
    """
    counts = dataset.posts_per_resource()
    stable_summary = dataset_stable_points(dataset)
    waste = waste_report(
        counts, stable_summary.stable_points, under_threshold=under_threshold
    )
    supports = [
        effective_support(TagFrequencyTable.from_posts(r.sequence).rfd())
        for r in dataset.resources
    ]
    return CorpusHealth(
        name=dataset.name,
        n=len(dataset),
        total_posts=int(counts.sum()),
        stable_points=stable_summary,
        waste=waste,
        salvage_posts=salvage_requirement(counts, under_threshold=under_threshold),
        support=summarize(np.array(supports)),
        posts_summary=summarize(counts.astype(np.float64)),
    )
