"""repro — a reproduction of "On Incentive-based Tagging" (ICDE 2013).

The package implements the paper's tagging-stability machinery, its
incentive allocation strategies (FC, RR, FP, MU, FP-MU and the optimal
DP), a del.icio.us-style synthetic corpus generator, and harnesses that
regenerate every figure and table of the paper's evaluation.

Quickstart::

    from repro.simulate import scenarios
    from repro.allocation import FewestPostsFirst, IncentiveRunner

    dataset, cutoff = scenarios.small_scenario(seed=7)
    split = dataset.split(cutoff)
    runner = IncentiveRunner.replay(split)
    trace = runner.run(FewestPostsFirst(), budget=200)
    print(trace.x)

See ``examples/quickstart.py`` for a narrated tour.
"""

from repro.core import (
    DEFAULT_OMEGA,
    DEFAULT_TAU,
    PREPARATION_OMEGA,
    PREPARATION_TAU,
    AllocationError,
    BudgetError,
    DataModelError,
    DatasetSplit,
    ExhaustedError,
    NotStableError,
    Post,
    PostSequence,
    QualityProfile,
    ReproError,
    Resource,
    ResourceSet,
    StabilityError,
    StabilityTracker,
    TagFrequencyTable,
    TaggingDataset,
    TagVocabulary,
    adjacent_similarity_series,
    cosine,
    find_stable_point,
    ma_series,
    practically_stable_rfd,
    set_quality,
    tagging_quality,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "BudgetError",
    "DEFAULT_OMEGA",
    "DEFAULT_TAU",
    "DataModelError",
    "DatasetSplit",
    "ExhaustedError",
    "NotStableError",
    "PREPARATION_OMEGA",
    "PREPARATION_TAU",
    "Post",
    "PostSequence",
    "QualityProfile",
    "ReproError",
    "Resource",
    "ResourceSet",
    "StabilityError",
    "StabilityTracker",
    "TagFrequencyTable",
    "TagVocabulary",
    "TaggingDataset",
    "adjacent_similarity_series",
    "cosine",
    "find_stable_point",
    "ma_series",
    "practically_stable_rfd",
    "set_quality",
    "tagging_quality",
    "__version__",
]
