"""repro — a reproduction of "On Incentive-based Tagging" (ICDE 2013).

The package implements the paper's tagging-stability machinery, its
incentive allocation strategies (FC, RR, FP, MU, FP-MU and the optimal
DP), a del.icio.us-style synthetic corpus generator, and harnesses that
regenerate every figure and table of the paper's evaluation.

Quickstart — the declarative API (:mod:`repro.api`) is the front door::

    from repro.api import AllocateSpec, CorpusSpec, run

    result = run(AllocateSpec(
        corpus=CorpusSpec(kind="paper", resources=80, seed=7),
        strategy="FP",
        budget=200,
    ))
    print(result.summary)

or hands-on with the building blocks::

    from repro.simulate import scenarios
    from repro.allocation import FewestPostsFirst, IncentiveRunner

    dataset, cutoff = scenarios.small_scenario(seed=7)
    split = dataset.split(cutoff)
    runner = IncentiveRunner.replay(split)
    trace = runner.run(FewestPostsFirst(), budget=200)
    print(trace.x)

See ``examples/quickstart.py`` and ``examples/spec_driven_run.py`` for
narrated tours.
"""

from repro.core import (
    DEFAULT_OMEGA,
    DEFAULT_TAU,
    PREPARATION_OMEGA,
    PREPARATION_TAU,
    AllocationError,
    BudgetError,
    DataModelError,
    DatasetSplit,
    ExhaustedError,
    NotStableError,
    Post,
    PostSequence,
    QualityProfile,
    ReproError,
    Resource,
    ResourceSet,
    SpecError,
    StabilityError,
    StabilityTracker,
    TagFrequencyTable,
    TaggingDataset,
    TagVocabulary,
    adjacent_similarity_series,
    cosine,
    find_stable_point,
    ma_series,
    practically_stable_rfd,
    set_quality,
    tagging_quality,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "BudgetError",
    "DEFAULT_OMEGA",
    "DEFAULT_TAU",
    "DataModelError",
    "DatasetSplit",
    "ExhaustedError",
    "NotStableError",
    "PREPARATION_OMEGA",
    "PREPARATION_TAU",
    "Post",
    "PostSequence",
    "QualityProfile",
    "ReproError",
    "Resource",
    "ResourceSet",
    "SpecError",
    "StabilityError",
    "StabilityTracker",
    "TagFrequencyTable",
    "TagVocabulary",
    "TaggingDataset",
    "adjacent_similarity_series",
    "cosine",
    "find_stable_point",
    "ma_series",
    "practically_stable_rfd",
    "set_quality",
    "tagging_quality",
    "__version__",
]
