"""repro.server — the multi-tenant campaign service.

The paper's Fig 2 system as a *service*: many users submit
:class:`~repro.api.specs.CampaignSpec`s, an asyncio scheduler interleaves
them epoch-by-epoch under fair round-robin, per-user budgets are enforced
across campaigns, and everything is durable — jobs survive restarts and
resume from checkpoints with byte-identical traces.

The pieces, bottom-up:

* :mod:`~repro.server.jobstore` — :class:`CampaignJob` lifecycle
  (``QUEUED → RUNNING → PAUSED/CHECKPOINTED → DONE/FAILED/CANCELLED``)
  in a :class:`JobStore` with a JSONL write-ahead journal;
* :mod:`~repro.server.tenants` — :class:`TenantLedger`, reserve/settle
  budget accounting per user across campaigns, fully auditable;
* :mod:`~repro.server.checkpoint` — journal-replay campaign checkpoints
  (pause/crash/resume, byte-identical);
* :mod:`~repro.server.driver` — :class:`CampaignDriver`, one epoch per
  scheduling slice with periodic checkpoints;
* :mod:`~repro.server.scheduler` — :class:`Scheduler`, the asyncio front
  door (``submit``/``pause``/``resume``/``cancel``/``status``) with
  bounded admission and the inbox/control file protocol behind the
  ``repro-tagging serve``/``submit``/``jobs``/``job`` CLI verbs.

Quickstart::

    import asyncio
    from repro.api import CampaignSpec, ServerSpec
    from repro.server import Scheduler

    sched = Scheduler(ServerSpec(root="state", slots=4, default_budget=500))
    job_id = sched.submit(CampaignSpec(budget=250), user="alice")
    asyncio.run(sched.run_until_idle())
    print(sched.status(job_id).state)   # "done"
"""

from repro.server.checkpoint import (
    has_campaign_checkpoint,
    restore_campaign_checkpoint,
    save_campaign_checkpoint,
)
from repro.server.driver import CampaignDriver
from repro.server.jobstore import CampaignJob, JobState, JobStore
from repro.server.scheduler import AdmissionError, Scheduler
from repro.server.tenants import TenantLedger, TenantTransaction

__all__ = [
    "AdmissionError",
    "CampaignDriver",
    "CampaignJob",
    "JobState",
    "JobStore",
    "Scheduler",
    "TenantLedger",
    "TenantTransaction",
    "has_campaign_checkpoint",
    "restore_campaign_checkpoint",
    "save_campaign_checkpoint",
]
