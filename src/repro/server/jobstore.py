"""Durable campaign-job lifecycle: :class:`CampaignJob` + :class:`JobStore`.

A *job* is one submitted :class:`~repro.api.specs.JobSpec` working its
way through the server::

    QUEUED -> RUNNING -> DONE
                |     -> FAILED
                |     -> CANCELLED
                +-> PAUSED / CHECKPOINTED -> RUNNING (resume)

The store is the server's source of truth and survives restarts: every
submission and state change is appended to a single JSONL journal
(``<root>/journal.jsonl``), and opening a store replays the journal to
rebuild the job table.  Jobs found ``RUNNING`` at open were interrupted
by a crash; they are demoted to ``CHECKPOINTED`` (resumable from their
last checkpoint) or back to ``QUEUED`` if they never checkpointed, so a
restarted server picks them up automatically.

Durability is append-only and single-writer by design — the scheduler is
one asyncio loop, so no locking is needed, and a torn final line (power
loss mid-append) is detected and dropped during replay.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import faults
from repro.api.results import JobRecord
from repro.api.specs import JobSpec
from repro.core.errors import SpecError

__all__ = ["JobState", "CampaignJob", "JobStore"]


class JobState(enum.Enum):
    """Lifecycle of a campaign job."""

    QUEUED = "queued"
    RUNNING = "running"
    PAUSED = "paused"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})
"""States a job never leaves."""

RUNNABLE_STATES = frozenset({JobState.QUEUED, JobState.PAUSED, JobState.CHECKPOINTED})
"""States from which the scheduler may (re)start a job."""


@dataclass
class CampaignJob:
    """One submitted campaign and its current lifecycle state.

    Attributes:
        job_id: Store-unique identifier (``job-0001``, ...).
        spec: The submitted job description.
        state: Current lifecycle state.
        epochs: Campaign epochs completed so far.
        spent: Reward units paid out so far.
        checkpoint_epoch: Epoch of the latest durable checkpoint
            (``-1`` = never checkpointed).
        attempts: Execution attempts consumed so far (each failed slice
            counts one; bounded by the spec's retry policy).
        trace: Final canonical trace payload once ``DONE`` (see
            :meth:`~repro.service.campaign.CampaignResult.trace_payload`).
        error: Failure description — the latest captured traceback; kept
            across retries so a job that eventually succeeds still shows
            what it survived, authoritative once ``FAILED``.
    """

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    epochs: int = 0
    spent: int = 0
    checkpoint_epoch: int = -1
    attempts: int = 0
    trace: dict[str, Any] = field(default_factory=dict)
    error: str = ""

    @property
    def user(self) -> str:
        """The owning tenant (straight from the spec)."""
        return self.spec.user

    @property
    def terminal(self) -> bool:
        """Whether the job can never run again."""
        return self.state in TERMINAL_STATES

    def record(self) -> JobRecord:
        """The job as a plain-data :class:`~repro.api.results.JobRecord`."""
        return JobRecord(
            job_id=self.job_id,
            user=self.user,
            state=self.state.value,
            spec=self.spec.to_dict(),
            epochs=self.epochs,
            spent=self.spent,
            checkpoint_epoch=self.checkpoint_epoch,
            attempts=self.attempts,
            trace=dict(self.trace),
            error=self.error,
        )


class JobStore:
    """The server's durable job table.

    Args:
        root: State directory.  ``None`` runs the store purely in
            memory (tests, benchmarks); otherwise the directory is
            created, ``<root>/journal.jsonl`` is replayed, and every
            mutation is appended to it before the in-memory table is
            updated (write-ahead ordering).
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else None
        self._jobs: dict[str, CampaignJob] = {}
        self._seq = 0
        self._journal_path: Path | None = None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._journal_path = self.root / "journal.jsonl"
            self._replay()

    # -- durability ----------------------------------------------------

    def _append(self, entry: dict[str, Any]) -> None:
        if self._journal_path is None:
            return
        line = json.dumps(entry, sort_keys=True) + "\n"
        spec = faults.check("jobstore.append")
        if spec is not None and spec.kind == "truncate_journal":
            # simulate power loss mid-append: half the line hits disk
            line = line[: max(1, len(line) // 2)]
        with self._journal_path.open("a", encoding="utf-8") as handle:
            handle.write(line)

    def _replay(self) -> None:
        assert self._journal_path is not None
        if not self._journal_path.exists():
            return
        for line in self._journal_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # torn final append from a crash mid-write; everything
                # before it already replayed, so just stop here
                break
            self._apply(entry)
        # RUNNING at open means the previous process died mid-job:
        # resumable from its checkpoint, or from scratch if none exists.
        # Demoted in memory only — replay re-derives it, and keeping the
        # open read-only lets CLI tools inspect a live server's store.
        for job in self._jobs.values():
            if job.state is JobState.RUNNING:
                job.state = (
                    JobState.CHECKPOINTED if job.checkpoint_epoch >= 0 else JobState.QUEUED
                )

    def _apply(self, entry: dict[str, Any]) -> None:
        kind = entry.get("event")
        if kind == "submit":
            spec = JobSpec.from_dict(entry["spec"])
            job = CampaignJob(job_id=entry["job_id"], spec=spec)
            self._jobs[job.job_id] = job
            self._seq = max(self._seq, _job_seq(job.job_id))
        elif kind == "state":
            job = self._jobs.get(entry.get("job_id", ""))
            if job is None:
                return  # state for an unknown job: journal truncated upstream
            job.state = JobState(entry["state"])
            job.epochs = int(entry.get("epochs", job.epochs))
            job.spent = int(entry.get("spent", job.spent))
            job.checkpoint_epoch = int(entry.get("checkpoint_epoch", job.checkpoint_epoch))
            job.attempts = int(entry.get("attempts", job.attempts))
            job.trace = entry.get("trace", job.trace)
            job.error = entry.get("error", job.error)
        # unknown event kinds are skipped: journals are forward-compatible

    @staticmethod
    def _state_entry(job: CampaignJob) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "event": "state",
            "job_id": job.job_id,
            "state": job.state.value,
            "epochs": job.epochs,
            "spent": job.spent,
            "checkpoint_epoch": job.checkpoint_epoch,
            "attempts": job.attempts,
        }
        if job.trace:
            entry["trace"] = job.trace
        if job.error:
            entry["error"] = job.error
        return entry

    # -- job table -----------------------------------------------------

    def submit(self, spec: JobSpec) -> CampaignJob:
        """Create a ``QUEUED`` job for ``spec`` and journal the submission."""
        if not isinstance(spec, JobSpec):
            raise SpecError(f"JobStore.submit expects a JobSpec, got {type(spec).__name__}")
        self._seq += 1
        job = CampaignJob(job_id=f"job-{self._seq:04d}", spec=spec)
        self._append({"event": "submit", "job_id": job.job_id, "spec": spec.to_dict()})
        self._jobs[job.job_id] = job
        return job

    def save(self, job: CampaignJob) -> None:
        """Journal ``job``'s current state (call after every mutation)."""
        self._append(self._state_entry(job))

    def log(self, entry: dict[str, Any]) -> None:
        """Append an auxiliary event (e.g. tenant transactions) to the journal.

        Replay skips event kinds it does not recognise, so auxiliary
        entries are pure audit trail.
        """
        self._append(dict(entry))

    def get(self, job_id: str) -> CampaignJob:
        """Look a job up by id.

        Raises:
            KeyError: If unknown.
        """
        return self._jobs[job_id]

    def jobs(self) -> list[CampaignJob]:
        """All jobs in submission order."""
        return sorted(self._jobs.values(), key=lambda job: _job_seq(job.job_id))

    def __len__(self) -> int:
        return len(self._jobs)

    # -- per-job filesystem layout ------------------------------------

    def job_dir(self, job_id: str) -> Path:
        """``<root>/jobs/<job_id>`` (created on demand).

        Raises:
            SpecError: For in-memory stores, which have no directories.
        """
        if self.root is None:
            raise SpecError("in-memory JobStore has no job directories")
        path = self.root / "jobs" / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def checkpoint_dir(self, job_id: str) -> Path:
        """Where ``job_id``'s campaign checkpoints live."""
        return self.job_dir(job_id) / "checkpoint"


def _job_seq(job_id: str) -> int:
    try:
        return int(job_id.rsplit("-", 1)[-1])
    except ValueError:
        return 0
