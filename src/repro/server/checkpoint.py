"""Durable campaign checkpoints: pause, crash and resume byte-identically.

A campaign's trace-visible state is large and heterogeneous (strategy
heaps, MA trackers or columnar banks, the board, the ledger, a NumPy
generator).  Rather than pickling all of it, a checkpoint stores the
campaign's *decision history*:

* ``state.json`` — epoch count, the per-epoch task-event journal
  (:attr:`~repro.service.campaign.IncentiveCampaign.journal`) and the
  exact bit-generator state of the campaign rng;
* ``bank-NNNNNN/`` — for engine-backed stability monitors, the columnar
  bank via :func:`repro.engine.checkpoint.save_checkpoint`, used as an
  integrity cross-check after restore.

Restore rebuilds the campaign from its spec, **replays** the journal
through the real strategy/board/ledger/monitor code paths
(:meth:`~repro.service.campaign.IncentiveCampaign.replay_epoch`), then
restores the rng state — so every future epoch consumes exactly the
draws the uninterrupted run would have, and the final trace is
byte-identical to a never-killed campaign.

Writes are crash-safe: the bank directory is written first, then
``state.json`` is swapped in atomically (``os.replace``), so a kill at
any instant leaves either the previous checkpoint or the new one —
never a torn mix.  The *previous* checkpoint survives one save cycle
(``state-prev.json`` + its bank directory): the engine-level bank files
are not written atomically, so a torn bank write
(:class:`~repro.engine.checkpoint.CheckpointCorrupted`) is detected at
restore time and the driver falls back one epoch instead of failing the
job — replaying a few more epochs costs time, never bytes.
"""

from __future__ import annotations

import json
import os
import shutil
import warnings
from pathlib import Path

from repro import obs
from repro.core.errors import SpecError
from repro.engine.checkpoint import CheckpointCorrupted
from repro.engine.checkpoint import load_checkpoint as _load_bank_checkpoint
from repro.engine.checkpoint import save_checkpoint as _save_bank_checkpoint
from repro.service.campaign import IncentiveCampaign

__all__ = [
    "CAMPAIGN_CHECKPOINT_FORMAT",
    "has_campaign_checkpoint",
    "save_campaign_checkpoint",
    "restore_campaign_checkpoint",
]

CAMPAIGN_CHECKPOINT_FORMAT = 1
_STATE = "state.json"
_STATE_PREV = "state-prev.json"


def has_campaign_checkpoint(directory: str | Path) -> bool:
    """Whether ``directory`` holds a restorable campaign checkpoint."""
    return (Path(directory) / _STATE).is_file()


def save_campaign_checkpoint(
    campaign: IncentiveCampaign, directory: str | Path
) -> Path:
    """Write ``campaign``'s decision history under ``directory``.

    Returns:
        The checkpoint directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    state = {
        "format": CAMPAIGN_CHECKPOINT_FORMAT,
        "epoch": campaign.epochs_run,
        "finished": campaign.finished,
        "rng_state": campaign.rng.bit_generator.state,
        "journal": campaign.journal,
    }
    bank = getattr(campaign._monitor, "_bank", None)
    bank_name = None
    if bank is not None:
        bank_name = f"bank-{campaign.epochs_run:06d}"
        _save_bank_checkpoint(bank, directory / bank_name)
        state["bank"] = bank_name
    state_path = directory / _STATE
    if state_path.is_file():
        # demote the current checkpoint to the fallback slot before the
        # swap: a torn bank write in *this* cycle must leave the previous
        # epoch fully restorable
        prev_tmp = directory / (_STATE_PREV + ".tmp")
        shutil.copyfile(state_path, prev_tmp)
        os.replace(prev_tmp, directory / _STATE_PREV)
    tmp = directory / (_STATE + ".tmp")
    tmp.write_text(json.dumps(state, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, state_path)
    # prune bank snapshots unreachable from both the current and the
    # fallback state files
    keep = {bank_name}
    prev_path = directory / _STATE_PREV
    if prev_path.is_file():
        try:
            keep.add(json.loads(prev_path.read_text(encoding="utf-8")).get("bank"))
        except json.JSONDecodeError:  # pragma: no cover - torn fallback slot
            pass
    for stale in directory.glob("bank-*"):
        if stale.is_dir() and stale.name not in keep:
            shutil.rmtree(stale, ignore_errors=True)
    return directory


def restore_campaign_checkpoint(spec, corpus, directory: str | Path) -> IncentiveCampaign:
    """Rebuild a campaign to exactly its checkpointed state.

    Args:
        spec: The originating :class:`~repro.api.specs.CampaignSpec`.
        corpus: Its materialized corpus (must match the one the
            checkpointed campaign ran against — both derive
            deterministically from the spec).
        directory: A directory written by :func:`save_campaign_checkpoint`.

    Raises:
        SpecError: On missing/incompatible checkpoints or when the
            replayed state disagrees with the saved bank snapshot
            (a spec that drifted since the checkpoint).
        CheckpointCorrupted: When the latest checkpoint's bank files are
            torn/truncated *and* no previous epoch's checkpoint remains
            to fall back to (one save cycle of history is kept).
    """
    directory = Path(directory)
    candidates = [
        path
        for path in (directory / _STATE, directory / _STATE_PREV)
        if path.is_file()
    ]
    if not candidates:
        raise SpecError(f"no campaign checkpoint at {directory}")
    corruption: CheckpointCorrupted | None = None
    for position, path in enumerate(candidates):
        try:
            return _restore_from_state(spec, corpus, directory, _read_state(path))
        except CheckpointCorrupted as exc:
            corruption = exc
            if position + 1 < len(candidates):
                warnings.warn(
                    f"campaign checkpoint {path.name} under {directory} is "
                    f"corrupt ({exc}); falling back to the previous epoch's "
                    "checkpoint",
                    RuntimeWarning,
                    stacklevel=2,
                )
                telemetry = obs.get()
                if telemetry.enabled:
                    telemetry.count("server.checkpoint_fallbacks")
    raise corruption


def _read_state(path: Path) -> dict:
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as exc:
        raise CheckpointCorrupted(
            f"campaign checkpoint state {path} is unreadable: {exc}"
        ) from exc
    if state.get("format") != CAMPAIGN_CHECKPOINT_FORMAT:
        raise SpecError(
            f"campaign checkpoint format {state.get('format')!r} not supported "
            f"(expected {CAMPAIGN_CHECKPOINT_FORMAT})"
        )
    return state


def _restore_from_state(spec, corpus, directory: Path, state: dict) -> IncentiveCampaign:
    campaign = IncentiveCampaign.from_spec(spec, corpus)
    try:
        campaign.start()
        for events in state["journal"]:
            campaign.replay_epoch(events)
        if campaign.epochs_run != int(state["epoch"]):
            raise SpecError(
                f"campaign checkpoint replay reached epoch {campaign.epochs_run}, "
                f"expected {state['epoch']} — spec/corpus drifted since the checkpoint"
            )
        # replay consumed rng draws the live run never made (and skipped
        # the worker draws it did make); the saved generator state erases
        # the difference so future epochs are byte-identical to an
        # unkilled run
        campaign.rng.bit_generator.state = state["rng_state"]
        campaign._finished = bool(state.get("finished", False))
        _verify_bank(campaign, directory, state)
    except BaseException:
        campaign.close()  # a failed restore must not leak the monitor pool
        raise
    return campaign


def _verify_bank(campaign: IncentiveCampaign, directory: Path, state: dict) -> None:
    """Cross-check replayed stability state against the saved bank."""
    bank_name = state.get("bank")
    rebuilt = getattr(campaign._monitor, "_bank", None)
    if not bank_name or rebuilt is None:
        return
    bank_dir = directory / bank_name
    if not bank_dir.is_dir():
        return  # bank snapshot pruned/lost; the journal remains authoritative
    saved = _load_bank_checkpoint(bank_dir)
    saved_stable = sorted(saved.stable_points().items())
    rebuilt_stable = sorted(rebuilt.stable_points().items())
    if saved_stable != rebuilt_stable:
        raise SpecError(
            "campaign checkpoint integrity failure: replayed stability state "
            f"disagrees with the saved bank ({len(rebuilt_stable)} vs "
            f"{len(saved_stable)} stable resources)"
        )
