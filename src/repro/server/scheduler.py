"""The asyncio front door of the campaign service: :class:`Scheduler`.

One event loop, many campaigns.  The scheduler is deliberately
single-threaded: campaign epochs are synchronous CPU slices, and the
loop interleaves them cooperatively — one epoch per scheduling slice,
``slots`` jobs in flight, fair round-robin across users (each user's
jobs take turns, and users take turns with each other, so one tenant
submitting fifty campaigns cannot starve another's one).

Determinism is the design invariant: every job owns an independent rng
seeded from its spec, so *any* interleaving of epoch slices produces
traces byte-identical to running each spec serially through
:func:`repro.api.run`.  Concurrency changes wall-clock, never results.

Admission is where multi-tenancy bites (cf. "Incentivized Advertising"
on per-owner incentive accounting):

* a **bounded queue** — more than ``max_queued`` waiting jobs and the
  submission is refused outright;
* a **tenant budget check** — the campaign's full budget is reserved
  against the user's cross-campaign allowance
  (:class:`~repro.server.tenants.TenantLedger`); over-budget users are
  rejected *before* any work happens, with the rejection in the audit
  log.

Durability: all lifecycle transitions go through the
:class:`~repro.server.jobstore.JobStore` journal, and the
:class:`~repro.server.driver.CampaignDriver` checkpoints every K epochs
— kill the process at any instant, build a new scheduler on the same
root, and interrupted jobs resume from their last checkpoint with
byte-identical final traces.

A file protocol makes the CLI work without sockets: ``<root>/inbox/``
receives ``JobSpec`` JSON files (``repro-tagging submit``) and
``<root>/control/`` receives ``<job_id>.<pause|resume|cancel>`` marker
files (``repro-tagging job``); :meth:`Scheduler.serve` polls both.
"""

from __future__ import annotations

import asyncio
import json
import traceback
from collections import defaultdict, deque

from repro import obs
from repro.api.results import JobRecord
from repro.api.specs import CampaignSpec, JobSpec, ServerSpec
from repro.core.errors import ReproError, SpecError
from repro.server.driver import CampaignDriver
from repro.server.jobstore import CampaignJob, JobState, JobStore
from repro.server.tenants import TenantLedger

__all__ = ["AdmissionError", "Scheduler"]

_CONTROL_ACTIONS = ("pause", "resume", "cancel")


class AdmissionError(ReproError):
    """A submission was refused at the front door (queue full / over budget)."""


class Scheduler:
    """Runs many users' campaigns concurrently over one job store.

    Args:
        spec: Service configuration; ``spec.root`` locates the durable
            state directory.
        store: Optional pre-built store (pass ``JobStore(None)`` for a
            pure in-memory scheduler in tests/benchmarks).  When given,
            it overrides ``spec.root``.
    """

    def __init__(self, spec: ServerSpec | None = None, *, store: JobStore | None = None) -> None:
        self.spec = spec if spec is not None else ServerSpec()
        self.store = store if store is not None else JobStore(self.spec.root)
        self._obs = obs.get()
        self.tenants = TenantLedger(
            self.spec.budgets,
            default_budget=self.spec.default_budget,
            sink=self._tenant_sink,
        )
        self._queues: dict[str, deque[str]] = defaultdict(deque)
        self._ring: deque[str] = deque()  # users, in round-robin order
        self._busy: set[str] = set()
        self._drivers: dict[str, CampaignDriver] = {}
        self._pause_requested: set[str] = set()
        self._cancel_requested: set[str] = set()
        self._retry_timers: dict[str, asyncio.Task] = {}
        self._stop: asyncio.Event | None = None
        self._recover()

    def _tenant_sink(self, payload: dict) -> None:
        self.store.log({"event": "tenant", **payload})

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild tenant balances and requeue interrupted jobs.

        The store already demoted crash-interrupted ``RUNNING`` jobs to
        ``CHECKPOINTED``/``QUEUED`` during journal replay; here the
        scheduler re-establishes their budget reservations (forced —
        admission decisions are never re-litigated) and puts every
        runnable job back in its user's queue.  ``PAUSED`` jobs stay
        parked until an explicit resume.
        """
        for job in self.store.jobs():
            if job.terminal:
                # history: the spend is already final; rebuild committed
                self.tenants.reserve(job.user, job.job_id, job.spent, force=True)
                self.tenants.settle(job.job_id, job.spent)
            else:
                self.tenants.reserve(
                    job.user, job.job_id, job.spec.campaign.budget, force=True
                )
                if job.state in (JobState.QUEUED, JobState.CHECKPOINTED):
                    self._enqueue(job.job_id)

    # -- admission -----------------------------------------------------

    def submit(self, spec: JobSpec | CampaignSpec, *, user: str | None = None) -> str:
        """Admit one campaign; returns its job id.

        Args:
            spec: A :class:`~repro.api.specs.JobSpec`, or a bare
                :class:`~repro.api.specs.CampaignSpec` (wrapped with
                ``user``).
            user: Owner override (a bare campaign spec defaults to
                ``anonymous`` without it).

        Raises:
            AdmissionError: Queue full, or the user's cross-campaign
                budget cannot cover the campaign (the rejection is
                journalled and the tenant ledger still reconciles).
        """
        if isinstance(spec, CampaignSpec):
            spec = JobSpec(campaign=spec, user=user or "anonymous")
        elif not isinstance(spec, JobSpec):
            raise SpecError(
                f"submit expects a JobSpec or CampaignSpec, got {type(spec).__name__}"
            )
        elif user is not None and user != spec.user:
            spec = spec.replace(user=user)
        queued = sum(len(queue) for queue in self._queues.values())
        if queued >= self.spec.max_queued:
            self._obs.count("server.rejected")
            raise AdmissionError(
                f"admission queue full ({queued}/{self.spec.max_queued} jobs waiting)"
            )
        job = self.store.submit(spec)
        if not self.tenants.reserve(job.user, job.job_id, spec.campaign.budget):
            job.state = JobState.FAILED
            job.error = (
                f"rejected at admission: budget {spec.campaign.budget} exceeds "
                f"user {job.user!r} remaining allowance {self.tenants.available(job.user)}"
            )
            self.store.save(job)
            self._obs.count("server.rejected")
            raise AdmissionError(job.error)
        self._obs.count("server.submitted")
        self._enqueue(job.job_id)
        return job.job_id

    # -- queue mechanics ----------------------------------------------

    def _enqueue(self, job_id: str) -> None:
        user = self.store.get(job_id).user
        if user not in self._ring:
            self._ring.append(user)
        self._queues[user].append(job_id)
        self._gauge_queue()

    def _dequeue(self, job_id: str) -> bool:
        user = self.store.get(job_id).user
        queue = self._queues.get(user)
        if queue and job_id in queue:
            queue.remove(job_id)
            self._gauge_queue()
            return True
        return False

    def _next_ready(self) -> str | None:
        """Fair round-robin: next user with a waiting job, their oldest job."""
        for _ in range(len(self._ring)):
            user = self._ring[0]
            self._ring.rotate(-1)
            queue = self._queues[user]
            if queue:
                job_id = queue.popleft()
                self._gauge_queue()
                return job_id
        return None

    def _gauge_queue(self) -> None:
        if self._obs.enabled:
            self._obs.gauge(
                "server.queue_depth",
                sum(len(queue) for queue in self._queues.values()),
            )

    # -- job control ---------------------------------------------------

    def pause(self, job_id: str) -> None:
        """Park a job at its next epoch boundary (immediately if queued)."""
        job = self.store.get(job_id)
        if job.terminal:
            raise SpecError(f"cannot pause {job_id}: already {job.state.value}")
        if job.state is JobState.PAUSED:
            return
        if self._cancel_retry_timer(job_id) or self._dequeue(job_id):
            self._apply_pause(job)
        else:
            self._pause_requested.add(job_id)

    def resume(self, job_id: str) -> None:
        """Requeue a paused job (restores from its checkpoint if durable)."""
        job = self.store.get(job_id)
        self._pause_requested.discard(job_id)
        if job.state not in (JobState.PAUSED, JobState.CHECKPOINTED):
            raise SpecError(f"cannot resume {job_id}: state is {job.state.value}")
        if self._cancel_retry_timer(job_id):
            # resuming a job parked on a retry backoff skips the rest of
            # the wait — the operator's nudge outranks the timer
            self._enqueue(job_id)
            return
        job.state = (
            JobState.CHECKPOINTED if job.checkpoint_epoch >= 0 else JobState.QUEUED
        )
        self.store.save(job)
        self._obs.count("server.resumed")
        self._enqueue(job_id)

    def cancel(self, job_id: str) -> None:
        """Terminate a job (at its next epoch boundary if mid-run)."""
        job = self.store.get(job_id)
        if job.terminal:
            return
        self._pause_requested.discard(job_id)
        self._cancel_retry_timer(job_id)
        if job_id in self._busy:
            self._cancel_requested.add(job_id)
        else:
            self._dequeue(job_id)
            self._apply_cancel(job)

    def status(self, job_id: str) -> JobRecord:
        """The job's current :class:`~repro.api.results.JobRecord`."""
        return self.store.get(job_id).record()

    def jobs(self) -> list[JobRecord]:
        """All job records, in submission order."""
        return [job.record() for job in self.store.jobs()]

    def _drop_driver(self, job_id: str) -> None:
        """Forget a job's driver, releasing its campaign's pooled resources."""
        driver = self._drivers.pop(job_id, None)
        if driver is not None:
            driver.close()

    def _apply_pause(self, job: CampaignJob) -> None:
        driver = self._drivers.get(job.job_id)
        if driver is not None and driver.campaign is not None:
            driver.checkpoint()
            if self.store.root is not None:
                # durable checkpoint taken: the live campaign can be
                # dropped and restored on resume (the crash-safe path)
                self._drop_driver(job.job_id)
        job.state = JobState.PAUSED
        self.store.save(job)
        self._obs.count("server.paused")

    def _apply_cancel(self, job: CampaignJob) -> None:
        job.state = JobState.CANCELLED
        self.store.save(job)
        self._drop_driver(job.job_id)
        self.tenants.settle(job.job_id, job.spent)
        self._obs.count("server.cancelled")

    # -- failure and retry ---------------------------------------------

    def _handle_job_failure(self, job: CampaignJob) -> None:
        """One attempt burned: requeue with backoff, or fail for good.

        The budget reservation stays in place across retries — the
        ledger settles exactly once, when the job reaches a terminal
        state — and every attempt is journalled, so a restarted server
        resumes with the correct attempt count.
        """
        job.attempts += 1
        job.error = traceback.format_exc().rstrip()
        self._drop_driver(job.job_id)
        policy = job.spec.retry
        if job.attempts < policy.max_attempts:
            # rewind to the last durable point; QUEUED restarts from
            # scratch when the job never checkpointed
            job.state = (
                JobState.CHECKPOINTED if job.checkpoint_epoch >= 0 else JobState.QUEUED
            )
            self.store.save(job)
            delay = policy.delay(job.attempts)
            self.store.log({
                "event": "attempt",
                "job_id": job.job_id,
                "attempt": job.attempts,
                "of": policy.max_attempts,
                "delay": delay,
                "resume_epoch": job.checkpoint_epoch,
            })
            self._obs.count("server.retries")
            self._schedule_retry(job.job_id, delay)
        else:
            job.state = JobState.FAILED
            self.store.save(job)
            self.tenants.settle(job.job_id, job.spent)
            self._obs.count("server.failed")

    def _schedule_retry(self, job_id: str, delay: float) -> None:
        if delay <= 0:
            self._enqueue(job_id)
            return
        self._retry_timers[job_id] = asyncio.create_task(
            self._retry_after(job_id, delay)
        )

    async def _retry_after(self, job_id: str, delay: float) -> None:
        try:
            await asyncio.sleep(delay)
        finally:
            self._retry_timers.pop(job_id, None)
        self._enqueue(job_id)

    def _cancel_retry_timer(self, job_id: str) -> bool:
        """Kill a pending backoff timer; ``True`` if one was pending."""
        timer = self._retry_timers.pop(job_id, None)
        if timer is None:
            return False
        timer.cancel()
        return True

    # -- the scheduling loop ------------------------------------------

    async def _slice(self, job_id: str) -> None:
        """One scheduling quantum: (prepare and) step one epoch of one job."""
        job = self.store.get(job_id)
        if job.terminal:
            return
        if job_id in self._cancel_requested:
            self._cancel_requested.discard(job_id)
            self._apply_cancel(job)
            return
        self._busy.add(job_id)
        try:
            with self._obs.span("server.slice", job=job_id, user=job.user):
                driver = self._drivers.get(job_id)
                if driver is None:
                    driver = CampaignDriver(
                        job,
                        self.store,
                        checkpoint_every=job.spec.checkpoint_every
                        or self.spec.checkpoint_every,
                    )
                    driver.prepare()
                    self._drivers[job_id] = driver
                if job.state is not JobState.RUNNING:
                    job.state = JobState.RUNNING
                    self.store.save(job)
                more = driver.step()
        except ReproError:
            self._handle_job_failure(job)
            return
        finally:
            self._busy.discard(job_id)
        if job_id in self._cancel_requested:
            self._cancel_requested.discard(job_id)
            self._apply_cancel(job)
        elif job_id in self._pause_requested:
            self._pause_requested.discard(job_id)
            self._apply_pause(job)
        elif more:
            self._enqueue(job_id)
        else:
            driver.finalize()
            job.state = JobState.DONE
            self.store.save(job)
            self._drop_driver(job_id)
            self.tenants.settle(job_id, job.spent)
            self._obs.count("server.completed")
        # yield: one epoch per slice is the fairness quantum
        await asyncio.sleep(0)

    async def _worker(self, *, idle_exit: bool, poll_interval: float) -> None:
        while self._stop is None or not self._stop.is_set():
            job_id = self._next_ready()
            if job_id is None:
                if self._retry_timers:
                    # jobs parked on backoff timers still count as work;
                    # nap until one requeues itself
                    await asyncio.sleep(0.005)
                elif not self._busy:
                    if idle_exit:
                        return
                    await asyncio.sleep(poll_interval)
                else:
                    await asyncio.sleep(0)
                continue
            await self._slice(job_id)

    async def run_until_idle(self) -> None:
        """Drive every queued job to a parked or terminal state, then return."""
        self._stop = None
        workers = [
            asyncio.create_task(self._worker(idle_exit=True, poll_interval=0.0))
            for _ in range(self.spec.slots)
        ]
        await asyncio.gather(*workers)

    async def serve(
        self,
        *,
        poll_interval: float = 0.25,
        shutdown: asyncio.Event | None = None,
    ) -> None:
        """Run forever: drive jobs and poll the inbox/control directories.

        Returns after ``shutdown`` is set, checkpointing every live job
        first so nothing re-runs more than its last uncheckpointed
        epochs on the next start.
        """
        self._stop = shutdown if shutdown is not None else asyncio.Event()
        tasks = [
            asyncio.create_task(self._worker(idle_exit=False, poll_interval=poll_interval))
            for _ in range(self.spec.slots)
        ]
        tasks.append(asyncio.create_task(self._poll_files(poll_interval)))
        await asyncio.gather(*tasks)
        self._drain_for_shutdown()

    def _drain_for_shutdown(self) -> None:
        # pending backoff timers die with the loop; journalled attempt
        # state requeues those jobs on the next start
        for job_id in list(self._retry_timers):
            self._cancel_retry_timer(job_id)
        for job_id, driver in list(self._drivers.items()):
            job = self.store.get(job_id)
            if job.terminal or driver.campaign is None:
                continue
            driver.checkpoint()
            job.state = JobState.CHECKPOINTED
            self.store.save(job)
            self._drop_driver(job_id)

    # -- file protocol (CLI without sockets) --------------------------

    async def _poll_files(self, poll_interval: float) -> None:
        assert self._stop is not None
        while not self._stop.is_set():
            self.poll_once()
            await asyncio.sleep(poll_interval)

    def poll_once(self) -> None:
        """Process pending inbox submissions and control requests."""
        if self.store.root is None:
            return
        inbox = self.store.root / "inbox"
        done = inbox / "processed"
        if inbox.is_dir():
            for path in sorted(inbox.glob("*.json")):
                done.mkdir(parents=True, exist_ok=True)
                receipt: dict[str, str] = {}
                try:
                    payload = json.loads(path.read_text(encoding="utf-8"))
                    if payload.get("type") == "campaign":
                        submitted = CampaignSpec.from_dict(payload)
                    else:
                        submitted = JobSpec.from_dict(payload)
                    receipt["job_id"] = self.submit(submitted)
                except (ReproError, json.JSONDecodeError, OSError) as exc:
                    receipt["error"] = str(exc)
                (done / (path.name + ".receipt")).write_text(
                    json.dumps(receipt, sort_keys=True) + "\n", encoding="utf-8"
                )
                path.rename(done / path.name)
        control = self.store.root / "control"
        if control.is_dir():
            for path in sorted(control.iterdir()):
                job_id, _, action = path.name.rpartition(".")
                if action in _CONTROL_ACTIONS and job_id:
                    try:
                        getattr(self, action)(job_id)
                    except (ReproError, KeyError):
                        pass  # unknown/terminal job: request is stale
                path.unlink(missing_ok=True)
