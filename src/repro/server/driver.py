"""Epoch-granular campaign execution: :class:`CampaignDriver`.

The driver owns the bridge between a durable :class:`~repro.server.jobstore.CampaignJob`
and a live :class:`~repro.service.campaign.IncentiveCampaign`.  The
scheduler never touches campaign internals; it calls exactly three
things:

* :meth:`CampaignDriver.prepare` — build the campaign from the job's
  spec, or restore it from the job's last checkpoint (crash/pause
  recovery);
* :meth:`CampaignDriver.step` — run **one epoch** and persist progress;
  one epoch is the scheduling quantum, so N jobs interleave fairly on a
  cooperative event loop;
* :meth:`CampaignDriver.finalize` / :meth:`CampaignDriver.checkpoint` —
  seal the final trace, or cut a durable resume point.

Checkpoint cadence is ``checkpoint_every`` epochs (``0`` = only on
explicit pause/shutdown).  Because checkpoints restore byte-identically
(see :mod:`repro.server.checkpoint`), a job killed *between* checkpoints
simply re-runs the uncheckpointed epochs and produces the same trace.
"""

from __future__ import annotations

import time

from repro import faults, obs
from repro.faults import FaultInjected
from repro.server.checkpoint import (
    has_campaign_checkpoint,
    restore_campaign_checkpoint,
    save_campaign_checkpoint,
)
from repro.server.jobstore import CampaignJob, JobStore
from repro.service.campaign import CampaignResult, IncentiveCampaign

__all__ = ["CampaignDriver"]


class CampaignDriver:
    """Steps one job's campaign, epoch by epoch, with durable progress.

    Args:
        job: The job to drive.
        store: Its job store (for journaling progress and locating the
            checkpoint directory; in-memory stores simply never
            checkpoint to disk).
        checkpoint_every: Epochs between durable checkpoints; ``0``
            disables the periodic cadence.
    """

    def __init__(
        self, job: CampaignJob, store: JobStore, *, checkpoint_every: int = 0
    ) -> None:
        self.job = job
        self.store = store
        self.checkpoint_every = max(0, checkpoint_every)
        self.campaign: IncentiveCampaign | None = None
        self.result: CampaignResult | None = None
        self._obs = obs.get()

    @property
    def _durable(self) -> bool:
        return self.store.root is not None

    def prepare(self) -> None:
        """Build the campaign — fresh, or restored from the last checkpoint."""
        import repro.api as api

        spec = self.job.spec.campaign
        corpus = api.materialize(spec.corpus)
        if self._durable:
            ckpt = self.store.checkpoint_dir(self.job.job_id)
            if self.job.checkpoint_epoch >= 0 and has_campaign_checkpoint(ckpt):
                with self._obs.span("server.restore", job=self.job.job_id):
                    self.campaign = restore_campaign_checkpoint(spec, corpus, ckpt)
                self._obs.count("server.restores")
                return
        self.campaign = IncentiveCampaign.from_spec(spec, corpus)
        try:
            self.campaign.start()
        except BaseException:
            self.close()  # a failed start must not leak the monitor pool
            raise

    def close(self) -> None:
        """Release the campaign's pooled resources.  Idempotent."""
        if self.campaign is not None:
            self.campaign.close()

    def step(self) -> bool:
        """Run one epoch; journal progress.  ``False`` once no work remains.

        The campaign's own stopping conditions (budget exhausted, nothing
        proposable) and the spec's ``max_epochs`` both end the job.
        """
        campaign = self.campaign
        assert campaign is not None, "step() before prepare()"
        if campaign.epochs_run >= self.job.spec.campaign.max_epochs:
            return False
        injected = faults.check("driver.step")
        if injected is not None and injected.kind == "error":
            raise FaultInjected(
                f"injected driver fault for {self.job.job_id} "
                f"at epoch {campaign.epochs_run}"
            )
        started = time.perf_counter() if self._obs.enabled else 0.0
        report = campaign.step_epoch()
        if report is None:
            return False
        if self._obs.enabled:
            self._obs.observe("server.epoch", (time.perf_counter() - started) * 1000.0)
            self._obs.count("server.epochs")
        self.job.epochs = campaign.epochs_run
        self.job.spent = campaign.ledger.spent
        if self.checkpoint_every and campaign.epochs_run % self.checkpoint_every == 0:
            self.checkpoint()
        else:
            self.store.save(self.job)
        return not campaign.finished

    def checkpoint(self) -> None:
        """Cut a durable resume point (no-op for in-memory stores)."""
        campaign = self.campaign
        assert campaign is not None, "checkpoint() before prepare()"
        if self._durable:
            with self._obs.span("server.checkpoint", job=self.job.job_id):
                save_campaign_checkpoint(
                    campaign, self.store.checkpoint_dir(self.job.job_id)
                )
            self.job.checkpoint_epoch = campaign.epochs_run
            self._obs.count("server.checkpoints")
        self.store.save(self.job)

    def finalize(self) -> CampaignResult:
        """Seal the finished campaign: final trace onto the job record."""
        campaign = self.campaign
        assert campaign is not None, "finalize() before prepare()"
        self.result = campaign.finish()
        self.job.epochs = campaign.epochs_run
        self.job.spent = campaign.ledger.spent
        self.job.trace = self.result.trace_payload()
        return self.result
