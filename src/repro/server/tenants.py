"""Per-user budget accounting across campaigns: :class:`TenantLedger`.

Each campaign already audits its own spend through
:class:`~repro.service.ledger.RewardLedger`; the *tenant* ledger sits one
level up and answers the multi-tenant question the paper's Fig 2 never
had to: may this user start another campaign at all?

The accounting discipline is reserve/settle, the same shape as the
related "Incentivized Advertising" analysis where incentive spend must
be attributable per campaign owner:

* **reserve** — admission takes the campaign's *full* budget out of the
  user's allowance up front, so concurrent campaigns can never
  collectively overshoot a cap, whatever order they finish in.
* **settle** — when the job reaches a terminal state, the units actually
  spent are committed and the unspent remainder released back.
* **reject** — an admission that would exceed the allowance is recorded
  too, so the audit trail shows every decision, not just the approvals.

Every movement is a :class:`TenantTransaction` in an append-only log;
:meth:`TenantLedger.reconcile` recomputes all balances from that log and
verifies they match the tracked state exactly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import BudgetError

__all__ = ["TenantTransaction", "TenantLedger"]


@dataclass(frozen=True)
class TenantTransaction:
    """One movement on a user's cross-campaign balance.

    Attributes:
        seq: Position in the ledger's append-only log.
        user: The tenant.
        job_id: The campaign job that caused the movement.
        kind: ``reserve`` | ``commit`` | ``release`` | ``reject``.
        amount: Reward units moved (always non-negative).
    """

    seq: int
    user: str
    job_id: str
    kind: str
    amount: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "user": self.user,
            "job_id": self.job_id,
            "kind": self.kind,
            "amount": self.amount,
        }


class TenantLedger:
    """Enforces per-user budgets across concurrent campaigns.

    Args:
        budgets: Per-user caps (``user -> reward units``); users listed
            here are capped even if ``default_budget`` is ``None``.
        default_budget: Cap for users absent from ``budgets``
            (``None`` = uncapped).
        sink: Optional callback invoked with each transaction's
            ``to_dict`` payload as it is logged — the scheduler points
            this at the job store's journal for durability.
    """

    def __init__(
        self,
        budgets: dict[str, int] | None = None,
        *,
        default_budget: int | None = None,
        sink: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        self._budgets = dict(budgets or {})
        self._default_budget = default_budget
        self._sink = sink
        self._reserved: dict[str, int] = defaultdict(int)
        self._committed: dict[str, int] = defaultdict(int)
        self._open: dict[str, tuple[str, int]] = {}  # job_id -> (user, reserved)
        self._log: list[TenantTransaction] = []

    # -- queries -------------------------------------------------------

    def allowance(self, user: str) -> int | None:
        """The user's total cap (``None`` = uncapped)."""
        return self._budgets.get(user, self._default_budget)

    def reserved_for(self, user: str) -> int:
        """Units currently reserved by the user's live jobs."""
        return self._reserved[user]

    def committed_for(self, user: str) -> int:
        """Units the user's settled jobs actually spent."""
        return self._committed[user]

    def available(self, user: str) -> int | None:
        """Units the user may still reserve (``None`` = uncapped)."""
        cap = self.allowance(user)
        if cap is None:
            return None
        return cap - self._reserved[user] - self._committed[user]

    @property
    def transactions(self) -> list[TenantTransaction]:
        """The full append-only movement log."""
        return list(self._log)

    # -- movements -----------------------------------------------------

    def _record(self, user: str, job_id: str, kind: str, amount: int) -> None:
        txn = TenantTransaction(
            seq=len(self._log), user=user, job_id=job_id, kind=kind, amount=amount
        )
        self._log.append(txn)
        if self._sink is not None:
            self._sink(txn.to_dict())

    def reserve(self, user: str, job_id: str, amount: int, *, force: bool = False) -> bool:
        """Reserve ``amount`` against ``user``'s allowance at admission.

        Returns ``True`` on success; ``False`` (with a ``reject``
        transaction logged) when the reservation would exceed the cap.

        Args:
            user: The tenant.
            job_id: The campaign job taking the reservation.
            amount: Units to reserve.
            force: Skip the cap check — used only when replaying already
                admitted jobs from a journal after a restart (admission
                decisions are never re-litigated).

        Raises:
            BudgetError: For negative amounts or a job_id that already
                holds a reservation — both are caller bugs, not budget
                decisions.
        """
        if amount < 0:
            raise BudgetError(f"cannot reserve a negative amount ({amount})")
        if job_id in self._open:
            raise BudgetError(f"job {job_id} already holds a reservation")
        available = self.available(user)
        if not force and available is not None and amount > available:
            self._record(user, job_id, "reject", amount)
            return False
        self._reserved[user] += amount
        self._open[job_id] = (user, amount)
        self._record(user, job_id, "reserve", amount)
        return True

    def settle(self, job_id: str, spent: int) -> None:
        """Close ``job_id``'s reservation: commit ``spent``, release the rest.

        Raises:
            BudgetError: If the job holds no reservation or claims to
                have spent more than it reserved.
        """
        if job_id not in self._open:
            raise BudgetError(f"job {job_id} holds no reservation to settle")
        user, reserved = self._open.pop(job_id)
        if spent < 0 or spent > reserved:
            self._open[job_id] = (user, reserved)
            raise BudgetError(
                f"job {job_id} settled {spent} outside its reservation of {reserved}"
            )
        self._reserved[user] -= reserved
        self._committed[user] += spent
        if spent:
            self._record(user, job_id, "commit", spent)
        if reserved - spent:
            self._record(user, job_id, "release", reserved - spent)
        if reserved == spent == 0:
            self._record(user, job_id, "release", 0)

    def reconcile(self) -> bool:
        """Recompute every balance from the log and compare to tracked state.

        The audit invariant: for every user,
        ``sum(reserves) - sum(releases) - sum(commits) == reserved`` and
        ``sum(commits) == committed``; rejects move nothing.
        """
        reserved: dict[str, int] = defaultdict(int)
        committed: dict[str, int] = defaultdict(int)
        for txn in self._log:
            if txn.kind == "reserve":
                reserved[txn.user] += txn.amount
            elif txn.kind == "release":
                reserved[txn.user] -= txn.amount
            elif txn.kind == "commit":
                reserved[txn.user] -= txn.amount
                committed[txn.user] += txn.amount
        users = set(reserved) | set(committed) | set(self._reserved) | set(self._committed)
        return all(
            reserved[user] == self._reserved[user]
            and committed[user] == self._committed[user]
            for user in users
        )
