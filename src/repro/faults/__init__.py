"""Deterministic fault injection for chaos testing (:mod:`repro.faults`).

See :mod:`repro.faults.plan` for the model.  Quick use::

    from repro import faults

    faults.activate({"specs": [
        {"site": "procpool.flush", "kind": "kill_worker", "at": 2},
    ]})

or set ``REPRO_TEST_FAULT_PLAN`` to a plan file path / inline JSON before
the process starts (the chaos CI leg does exactly this).
"""

from .plan import (
    ENV_FAULT_PLAN,
    FAULT_KINDS,
    FaultError,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    activate,
    active,
    check,
    deactivate,
    load_plan,
)

__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_KINDS",
    "FaultError",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active",
    "check",
    "deactivate",
    "load_plan",
]
