"""Seeded deterministic fault injection (`FaultPlan` / `FaultSpec`).

Production-scale campaigns run over crowd timescales; worker death and
torn writes are routine there, not exceptional.  This module gives the
test suite (and the chaos CI leg) a way to *schedule* those events
deterministically: a :class:`FaultPlan` is a JSON-round-tripping list of
:class:`FaultSpec` entries, each naming an injection *site* (a counted
code location such as ``procpool.flush``), a fault *kind*, and the
occurrence indices at which it fires.

Sites call :func:`check` — a no-op returning ``None`` unless a plan is
active — so the production hot path pays one module-global load and a
``None`` test per site visit.  Activation is explicit (:func:`activate`)
or via the ``REPRO_TEST_FAULT_PLAN`` environment variable, which holds
either a path to a plan JSON file or the inline JSON itself.  Forked
worker processes inherit the active injector (with independent copies of
its counters), so worker-side sites fire deterministically too.

Injection sites wired through the codebase:

==================== ====================================================
site                 counted at
==================== ====================================================
``procpool.flush``   each parent-side flush of the process shard pool
``procpool.worker``  each command handled by a process shard worker
``checkpoint.shard`` each per-shard state write in an engine checkpoint
``jobstore.append``  each line appended to the server job journal
``driver.step``      each epoch slice the server drives for a job
``campaign.epoch``   each live campaign epoch
==================== ====================================================

Kinds: ``kill_worker`` (SIGKILL a pool worker / hard-exit the worker
process), ``stall_worker`` (worker sleeps, optionally ignoring SIGTERM),
``torn_write`` (truncate the tail of the just-written checkpoint file),
``truncate_journal`` (tear the just-appended journal line in half), and
``error`` (raise :class:`FaultInjected`, a ``ReproError``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.errors import ReproError
from ..obs import get as _get_telemetry

__all__ = [
    "FAULT_KINDS",
    "ENV_FAULT_PLAN",
    "FaultError",
    "FaultInjected",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "activate",
    "deactivate",
    "active",
    "check",
    "load_plan",
]

FAULT_KINDS = (
    "error",
    "kill_worker",
    "stall_worker",
    "torn_write",
    "truncate_journal",
)

ENV_FAULT_PLAN = "REPRO_TEST_FAULT_PLAN"


class FaultError(ReproError):
    """A fault plan is malformed (bad kind, negative index, bad JSON)."""


class FaultInjected(ReproError):
    """An ``error``-kind fault fired at an injection site.

    Subclasses ``ReproError`` so the scheduler's job-failure handling
    treats it exactly like a genuine campaign error.
    """


def _require_int(name: str, value: Any, *, minimum: int = 0) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise FaultError(f"fault spec field {name!r} must be an int, got {value!r}")
    if value < minimum:
        raise FaultError(f"fault spec field {name!r} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` at occurrence ``at`` of ``site``.

    ``every > 0`` repeats the fault at ``at``, ``at + every``,
    ``at + 2*every``, …; ``times`` bounds the total number of firings
    (``0`` means unbounded).  ``param`` carries kind-specific knobs
    (e.g. ``{"worker": 1}`` for ``kill_worker``, ``{"seconds": 5.0}``
    for ``stall_worker``, ``{"bytes": 64}`` for ``torn_write``).
    """

    site: str
    kind: str
    at: int = 0
    every: int = 0
    times: int = 1
    param: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.site, str) or not self.site:
            raise FaultError(f"fault spec site must be a nonempty string, got {self.site!r}")
        if self.kind not in FAULT_KINDS:
            known = ", ".join(sorted(FAULT_KINDS))
            raise FaultError(f"unknown fault kind {self.kind!r} (known: {known})")
        _require_int("at", self.at)
        _require_int("every", self.every)
        _require_int("times", self.times)
        if not isinstance(self.param, Mapping):
            raise FaultError(f"fault spec param must be a mapping, got {self.param!r}")
        object.__setattr__(self, "param", dict(self.param))

    def matches(self, index: int) -> bool:
        """Does this spec fire at occurrence ``index`` of its site?"""
        if index < self.at:
            return False
        if index == self.at:
            return True
        return self.every > 0 and (index - self.at) % self.every == 0

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.at:
            payload["at"] = self.at
        if self.every:
            payload["every"] = self.every
        if self.times != 1:
            payload["times"] = self.times
        if self.param:
            payload["param"] = dict(self.param)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(payload, Mapping):
            raise FaultError(f"fault spec payload must be a mapping, got {payload!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultError(f"unknown fault spec keys: {', '.join(unknown)}")
        if "site" not in payload or "kind" not in payload:
            raise FaultError("fault spec payload requires 'site' and 'kind'")
        return cls(**dict(payload))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` plus a plan seed.

    The seed does not feed any randomness inside the injector (firing is
    purely occurrence-counted) — it is carried so chaos runs can stamp
    which schedule produced a trace and regenerate variations.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(f"plan entries must be FaultSpec, got {spec!r}")
        object.__setattr__(self, "specs", specs)
        _require_int("seed", self.seed)

    def to_dict(self) -> dict[str, Any]:
        return {"specs": [s.to_dict() for s in self.specs], "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(payload, Mapping):
            raise FaultError(f"fault plan payload must be a mapping, got {payload!r}")
        unknown = sorted(set(payload) - {"specs", "seed"})
        if unknown:
            raise FaultError(f"unknown fault plan keys: {', '.join(unknown)}")
        raw_specs = payload.get("specs", [])
        if not isinstance(raw_specs, (list, tuple)):
            raise FaultError(f"fault plan 'specs' must be a list, got {raw_specs!r}")
        specs = tuple(FaultSpec.from_dict(s) for s in raw_specs)
        return cls(specs=specs, seed=payload.get("seed", 0))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc}") from None
        return cls.from_dict(payload)


def load_plan(source: str) -> FaultPlan:
    """Load a plan from a JSON file path or an inline JSON string."""
    text = source.strip()
    if not text.startswith("{"):
        try:
            text = open(source, encoding="utf-8").read()
        except OSError as exc:
            raise FaultError(f"cannot read fault plan {source!r}: {exc}") from None
    return FaultPlan.from_json(text)


class FaultInjector:
    """Live occurrence counters over a :class:`FaultPlan`.

    One injector is active per process; forked children inherit it (with
    copied counter state at fork time), which is what makes worker-side
    sites deterministic: the parent's counters never advance for sites
    only the worker visits and vice versa.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._indices: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._obs = _get_telemetry()

    def check(self, site: str) -> FaultSpec | None:
        """Count a visit to ``site``; return the spec to fire, if any."""
        index = self._indices.get(site, 0)
        self._indices[site] = index + 1
        for position, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.times and self._fired.get(position, 0) >= spec.times:
                continue
            if spec.matches(index):
                self._fired[position] = self._fired.get(position, 0) + 1
                if self._obs.enabled:
                    self._obs.count("faults.injected")
                    self._obs.count(f"faults.{spec.kind}")
                return spec
        return None

    def site_index(self, site: str) -> int:
        """How many times ``site`` has been visited so far."""
        return self._indices.get(site, 0)

    def fired_total(self) -> int:
        return sum(self._fired.values())


_ACTIVE: FaultInjector | None = None
_ENV_CHECKED = False


def activate(plan: FaultPlan | Mapping[str, Any] | str) -> FaultInjector:
    """Install ``plan`` (a FaultPlan, dict payload, or path/JSON string)."""
    global _ACTIVE, _ENV_CHECKED
    if isinstance(plan, str):
        plan = load_plan(plan)
    elif isinstance(plan, Mapping):
        plan = FaultPlan.from_dict(plan)
    elif not isinstance(plan, FaultPlan):
        raise FaultError(f"cannot activate fault plan from {plan!r}")
    _ACTIVE = FaultInjector(plan)
    _ENV_CHECKED = True  # explicit activation overrides the env plan
    return _ACTIVE


def deactivate() -> None:
    """Remove the active injector (the env plan does not resurrect)."""
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = True


def _reset_for_tests() -> None:
    global _ACTIVE, _ENV_CHECKED
    _ACTIVE = None
    _ENV_CHECKED = False


def active() -> FaultInjector | None:
    """The process-wide injector, lazily loading ``REPRO_TEST_FAULT_PLAN``."""
    global _ACTIVE, _ENV_CHECKED
    if _ACTIVE is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        source = os.environ.get(ENV_FAULT_PLAN, "").strip()
        if source:
            _ACTIVE = FaultInjector(load_plan(source))
    return _ACTIVE


def check(site: str) -> FaultSpec | None:
    """Site entry point: count a visit, return a spec when one fires."""
    injector = active()
    if injector is None:
        return None
    return injector.check(site)
