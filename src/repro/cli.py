"""Command-line interface: ``repro-tagging <command>``.

Commands:

* ``generate`` — synthesise a corpus and write it to JSONL;
* ``analyze``  — corpus health: stable points, over/under-tagging, waste;
* ``allocate`` — run one strategy on a corpus and report quality;
* ``experiment`` — regenerate a figure/table of the paper;
* ``case-study`` — print the Tables VI/VII top-10 comparisons;
* ``ingest`` — stream an interleaved event log through the vectorized
  engine (optionally sharded / checkpointed);
* ``stats`` — render a telemetry snapshot, ``RunResult`` JSON, or
  Chrome-trace JSONL as latency/counter tables;
* ``packs list`` / ``packs show`` / ``packs build`` — the scenario-pack
  registry (:mod:`repro.packs`): list registered corpus workloads,
  inspect a pack's declared parameters, build one and print its
  quality report (optionally writing the corpus to JSONL);
* ``serve`` / ``submit`` / ``jobs`` / ``job`` — the multi-tenant
  campaign service (:mod:`repro.server`): run the scheduler over a
  durable state directory, queue campaign specs into its inbox, and
  inspect or pause/resume/cancel jobs.

The run-style commands (``allocate``, ``campaign``, ``ingest``) are pure
argv→spec translators: each builds the matching :mod:`repro.api` spec
and prints ``repro.api.run(spec).summary``, so anything the CLI does is
one serializable spec away from being queued, stored, or replayed from
Python.  Strategy names (and which strategies accept ``--omega``) come
from the strategy registry's declared schemas — no signature guessing.

All three run-style commands accept ``--telemetry`` (print a latency /
counter report after the summary) and ``--telemetry-out PATH`` (stream
a Chrome-trace JSONL while running); both simply populate the spec's
:class:`~repro.api.TelemetrySpec`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro
import repro.api as api
from repro.api import (
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    EXECUTOR_BACKENDS,
    ExecutionSpec,
    IngestSpec,
    STRATEGIES,
    TelemetrySpec,
)
from repro.allocation.monitor import MONITOR_BACKENDS
from repro.core.dataset import TaggingDataset
from repro.experiments import (
    DEFAULT_SCALE,
    ExperimentHarness,
    ExperimentScale,
    budget_to_stability,
    figure_1a,
    figure_1b,
    figure_3,
    figure_5,
    figure_6abcd,
    figure_6e,
    figure_6f,
    figure_7a,
    figure_7b,
    intro_statistics,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
    run_case_study,
    running_example,
    runtime_vs_budget,
    runtime_vs_resources,
)
from repro.simulate import case_study_scenario, paper_scenario

__all__ = ["main", "build_parser"]


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record run telemetry and print a latency/counter report",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="stream a Chrome-trace JSONL here (implies --telemetry)",
    )


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    """The ``--exec-*`` group: one vocabulary for shard execution.

    These map 1:1 onto :class:`~repro.api.ExecutionSpec` and take
    precedence over the command's legacy sharding flags (``--shards``,
    ``--shard-workers``, ingest's ``--workers``), which remain as
    deprecated aliases.
    """
    group = parser.add_argument_group(
        "execution", "how sharded stability state is partitioned and run"
    )
    group.add_argument(
        "--exec-backend",
        choices=list(EXECUTOR_BACKENDS),
        default=None,
        help="shard executor backend (default: thread when workers > 0, else serial)",
    )
    group.add_argument(
        "--exec-shards",
        type=int,
        default=None,
        metavar="N",
        help="number of independent stability shards",
    )
    group.add_argument(
        "--exec-workers",
        type=int,
        default=None,
        metavar="N",
        help="pool size for thread/process backends (0 = one per core)",
    )
    group.add_argument(
        "--exec-min-parallel-events",
        type=int,
        default=None,
        metavar="N",
        help="flush size below which pooled dispatch falls back inline",
    )


def _execution_spec(
    args: argparse.Namespace, *, legacy_shards: int, legacy_workers: int
) -> ExecutionSpec:
    """Fold ``--exec-*`` flags (preferred) and legacy flags into one spec."""
    shards = args.exec_shards if args.exec_shards is not None else legacy_shards
    workers = args.exec_workers if args.exec_workers is not None else legacy_workers
    backend = args.exec_backend
    if backend is None:
        backend = "thread" if workers > 0 else "serial"
    return ExecutionSpec(
        backend=backend,
        shards=shards,
        workers=workers,
        min_parallel_events=args.exec_min_parallel_events,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-tagging",
        description="Reproduction of 'On Incentive-based Tagging' (ICDE 2013)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        default=None,
        help="activate a deterministic fault-injection plan before the "
        "command runs: a JSON file path or inline JSON (chaos testing; "
        "same schema as the REPRO_TEST_FAULT_PLAN environment variable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("output", type=Path, help="output JSONL path")
    generate.add_argument("--resources", type=int, default=200)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--universe", action="store_true", help="heavy-tailed universe instead of a filtered corpus"
    )

    analyze = sub.add_parser("analyze", help="corpus health statistics")
    analyze.add_argument("dataset", type=Path, nargs="?", help="JSONL corpus (default: generated)")
    analyze.add_argument("--resources", type=int, default=150)
    analyze.add_argument("--seed", type=int, default=7)

    allocate = sub.add_parser("allocate", help="run an allocation strategy")
    allocate.add_argument("strategy", choices=STRATEGIES.names())
    allocate.add_argument("--budget", type=int, default=500)
    allocate.add_argument("--resources", type=int, default=150)
    allocate.add_argument("--seed", type=int, default=7)
    allocate.add_argument("--omega", type=int, default=5)
    allocate.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="batched CHOOSE chunk size (traces are identical at any value)",
    )
    allocate.add_argument(
        "--stability",
        choices=list(MONITOR_BACKENDS),
        default=None,
        help="monitor observed stability during the run",
    )
    _add_telemetry_args(allocate)

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument(
        "figure",
        choices=[
            "fig1a", "fig1b", "fig3", "fig5", "fig6a", "fig6b", "fig6c", "fig6d",
            "fig6e", "fig6f", "fig6g", "fig6h", "fig7a", "fig7b",
            "table2", "intro", "stability-budget",
        ],
    )
    experiment.add_argument("--resources", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)

    case = sub.add_parser("case-study", help="Tables VI/VII top-10 comparisons")
    case.add_argument("--budget", type=int, default=2500)
    case.add_argument("--seed", type=int, default=1)

    campaign = sub.add_parser(
        "campaign", help="run the incentive-tagging service prototype"
    )
    campaign.add_argument("strategy", choices=STRATEGIES.names(), nargs="?", default="FP")
    campaign.add_argument("--budget", type=int, default=600)
    campaign.add_argument("--resources", type=int, default=40)
    campaign.add_argument("--workers", type=int, default=10)
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument(
        "--no-adaptive-stop", action="store_true", help="disable online stopping"
    )
    campaign.add_argument(
        "--stability",
        choices=list(MONITOR_BACKENDS),
        default=None,
        help="stability backend for adaptive stopping (default: tracker)",
    )
    campaign.add_argument(
        "--engine",
        action="store_true",
        help="shorthand for --stability engine (kept for compatibility)",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=4,
        help="deprecated alias for --exec-shards",
    )
    campaign.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="deprecated alias for --exec-workers "
        "(0 = serial; traces are identical either way)",
    )
    _add_exec_args(campaign)
    _add_telemetry_args(campaign)

    ingest = sub.add_parser(
        "ingest", help="stream tagging events through the vectorized engine"
    )
    ingest.add_argument(
        "dataset", type=Path, nargs="?", help="JSONL corpus to replay (default: synthetic stream)"
    )
    ingest.add_argument("--resources", type=int, default=500)
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument(
        "--shards", type=int, default=1, help="deprecated alias for --exec-shards"
    )
    ingest.add_argument(
        "--workers",
        type=int,
        default=0,
        help="deprecated alias for --exec-workers "
        "(0 = serial; needs shards > 1; results are identical)",
    )
    _add_exec_args(ingest)
    ingest.add_argument("--batch-size", type=int, default=4096)
    ingest.add_argument("--omega", type=int, default=5)
    ingest.add_argument("--tau", type=float, default=0.99)
    ingest.add_argument(
        "--max-events", type=int, default=None, help="cap the synthetic stream length"
    )
    ingest.add_argument(
        "--checkpoint", type=Path, default=None, help="write a checkpoint here at the end"
    )
    ingest.add_argument(
        "--resume", type=Path, default=None, help="resume from a checkpoint directory"
    )
    _add_telemetry_args(ingest)

    health = sub.add_parser("health", help="full corpus health report")
    health.add_argument("dataset", type=Path, nargs="?", help="JSONL corpus (default: generated)")
    health.add_argument("--resources", type=int, default=100)
    health.add_argument("--seed", type=int, default=7)

    stats = sub.add_parser(
        "stats", help="render telemetry (snapshot JSON, RunResult JSON, or trace JSONL)"
    )
    stats.add_argument("path", type=Path, help="telemetry file to render")

    serve = sub.add_parser("serve", help="run the multi-tenant campaign service")
    serve.add_argument("--root", type=Path, default=Path("server-state"),
                       help="durable state directory (journal, checkpoints, inbox)")
    serve.add_argument("--slots", type=int, default=4,
                       help="concurrent jobs stepped per scheduling round")
    serve.add_argument("--max-queued", type=int, default=64,
                       help="bounded admission queue size")
    serve.add_argument("--checkpoint-every", type=int, default=5,
                       help="epochs between durable job checkpoints (0 = only on pause)")
    serve.add_argument("--budget", action="append", default=[], metavar="USER=UNITS",
                       help="per-user cross-campaign budget cap (repeatable)")
    serve.add_argument("--default-budget", type=int, default=None,
                       help="budget cap for users without an explicit --budget")
    serve.add_argument("--poll-interval", type=float, default=0.25,
                       help="seconds between inbox/control scans")
    serve.add_argument("--until-idle", action="store_true",
                       help="process the current inbox and queue, then exit "
                       "(instead of serving forever)")
    _add_telemetry_args(serve)

    submit = sub.add_parser("submit", help="queue a campaign spec into a server's inbox")
    submit.add_argument("spec", type=Path, help="CampaignSpec or JobSpec JSON file")
    submit.add_argument("--root", type=Path, default=Path("server-state"),
                        help="the server's state directory")
    submit.add_argument("--user", default=None, help="owning tenant")
    submit.add_argument("--wait", type=float, default=0.0, metavar="SECONDS",
                        help="wait up to this long for the server's receipt")

    jobs = sub.add_parser("jobs", help="list a server's jobs")
    jobs.add_argument("--root", type=Path, default=Path("server-state"),
                      help="the server's state directory")

    packs = sub.add_parser("packs", help="list, inspect and build scenario packs")
    packs_sub = packs.add_subparsers(dest="packs_command", required=True)
    packs_sub.add_parser("list", help="table of registered packs")
    packs_show = packs_sub.add_parser("show", help="one pack's parameters and filters")
    packs_show.add_argument("name", help="registered pack name")
    packs_build = packs_sub.add_parser(
        "build", help="build a pack and print its quality report"
    )
    packs_build.add_argument("name", help="registered pack name")
    packs_build.add_argument("--seed", type=int, default=0)
    packs_build.add_argument(
        "--param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="pack parameter override (repeatable; VALUE parsed as JSON, "
        "else taken as a string)",
    )
    packs_build.add_argument(
        "--output", type=Path, default=None, help="write the built corpus to JSONL"
    )

    jobctl = sub.add_parser("job", help="inspect or control one job")
    jobctl.add_argument("job_id", help="job id (see `jobs`)")
    jobctl.add_argument("--root", type=Path, default=Path("server-state"),
                        help="the server's state directory")
    action = jobctl.add_mutually_exclusive_group()
    action.add_argument("--pause", action="store_true", help="pause at the next epoch")
    action.add_argument("--resume", action="store_true", help="requeue a paused job")
    action.add_argument("--cancel", action="store_true", help="terminate the job")

    return parser


def _scale_for(args: argparse.Namespace) -> ExperimentScale:
    from dataclasses import replace

    scale = DEFAULT_SCALE
    overrides = {}
    if args.resources is not None:
        # Budgets are meaningful relative to corpus size: shrink or grow
        # every grid proportionally with the resource count.
        factor = args.resources / scale.n_resources
        overrides["n_resources"] = args.resources
        overrides["budgets"] = tuple(
            sorted({int(round(b * factor)) for b in scale.budgets})
        )
        overrides["dp_budgets"] = tuple(
            sorted({int(round(b * factor)) for b in scale.dp_budgets})
        )
        overrides["omega_sweep_budget"] = max(1, int(scale.omega_sweep_budget * factor))
        overrides["resource_counts"] = tuple(
            sorted({max(2, int(round(n * factor))) for n in scale.resource_counts})
        )
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scale = replace(scale, **overrides)
    return scale


def _command_generate(args: argparse.Namespace) -> int:
    spec = CorpusSpec(
        kind="universe" if args.universe else "paper",
        resources=args.resources,
        seed=args.seed,
    )
    corpus = api.materialize(spec)
    corpus.dataset.to_jsonl(args.output)
    print(
        f"wrote {len(corpus.dataset)} resources / {corpus.dataset.total_posts} posts "
        f"to {args.output}"
    )
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        dataset = TaggingDataset.from_jsonl(args.dataset)
        from repro.analysis import dataset_stable_points, summarize

        summary = dataset_stable_points(dataset)
        print(f"corpus: {dataset.name} ({len(dataset)} resources, {dataset.total_posts} posts)")
        defined = summary.stable_points[summary.stable_points >= 0]
        if len(defined):
            print(f"stable points: {summarize(defined).render()}")
        print(f"resources without a stable point: {len(dataset) - summary.num_stable}")
        return 0
    stats = intro_statistics(n=args.resources, seed=args.seed)
    print(stats.render())
    return 0


def _telemetry_spec(args: argparse.Namespace) -> TelemetrySpec | None:
    """The ``--telemetry[-out]`` flags as a spec component (or ``None``)."""
    if not (args.telemetry or args.telemetry_out is not None):
        return None
    return TelemetrySpec(
        enabled=True,
        trace_path=None if args.telemetry_out is None else str(args.telemetry_out),
    )


def _print_result(result: api.RunResult, args: argparse.Namespace) -> None:
    """Print a run's summary, plus its telemetry report when requested."""
    print(result.summary)
    if (args.telemetry or args.telemetry_out is not None) and result.telemetry:
        from repro.obs import render_snapshot

        print()
        print(render_snapshot(result.telemetry))


def _command_allocate(args: argparse.Namespace) -> int:
    spec = AllocateSpec(
        corpus=CorpusSpec(kind="paper", resources=args.resources, seed=args.seed),
        strategy=args.strategy,
        params=STRATEGIES.filter_params(args.strategy, omega=args.omega),
        budget=args.budget,
        batch_size=args.batch_size,
        stability=args.stability,
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    figure = args.figure
    if figure == "table2":
        print(running_example().render())
        return 0
    if figure == "fig1a":
        print(figure_1a().render())
        return 0
    if figure == "fig1b":
        print(figure_1b(n=args.resources or 5000, seed=args.seed or 0).render())
        return 0
    if figure == "fig3":
        print(figure_3(seed=args.seed or 0).render())
        return 0
    if figure == "fig5":
        print(figure_5(seed=args.seed or 0).render())
        return 0
    if figure == "intro":
        print(intro_statistics(n=args.resources or 250, seed=args.seed or 7).render())
        return 0

    scale = _scale_for(args)
    harness = ExperimentHarness.from_scale(scale)
    if figure in ("fig6a", "fig6b", "fig6c", "fig6d"):
        comparison = figure_6abcd(harness=harness)
        renderer = {
            "fig6a": render_figure_6a,
            "fig6b": render_figure_6b,
            "fig6c": render_figure_6c,
            "fig6d": render_figure_6d,
        }[figure]
        print(renderer(comparison))
    elif figure == "fig6e":
        print(figure_6e(harness=harness).render())
    elif figure == "fig6f":
        print(figure_6f(harness=harness).render())
    elif figure == "fig6g":
        print(runtime_vs_budget(harness=harness).render())
    elif figure == "fig6h":
        print(runtime_vs_resources(harness=harness).render())
    elif figure == "fig7a":
        print(figure_7a(harness=harness).render())
    elif figure == "fig7b":
        print(figure_7b(figure_7a(harness=harness)).render())
    elif figure == "stability-budget":
        print(budget_to_stability(harness).render())
    return 0


def _command_case_study(args: argparse.Namespace) -> int:
    scenario = case_study_scenario(seed=args.seed)
    result = run_case_study(scenario, budget=args.budget)
    print(result.render())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    backend = args.stability or ("engine" if args.engine else "tracker")
    spec = CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=args.resources, seed=args.seed),
        strategy=args.strategy,
        budget=args.budget,
        workers=args.workers,
        seed=args.seed,
        stop_tau=None if args.no_adaptive_stop else 0.995,
        stability_backend=backend,
        execution=_execution_spec(
            args, legacy_shards=args.shards, legacy_workers=args.shard_workers
        ),
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    spec = IngestSpec(
        dataset=None if args.dataset is None else str(args.dataset),
        resources=args.resources,
        seed=args.seed,
        execution=_execution_spec(
            args, legacy_shards=args.shards, legacy_workers=args.workers
        ),
        batch_size=args.batch_size,
        omega=args.omega,
        tau=args.tau,
        max_events=args.max_events,
        checkpoint=None if args.checkpoint is None else str(args.checkpoint),
        resume=None if args.resume is None else str(args.resume),
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.obs import load_stats, render_snapshot

    try:
        snapshot = load_stats(args.path)
    except OSError as exc:
        print(f"stats: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"stats: {args.path} is not telemetry data: {exc}", file=sys.stderr)
        return 1
    print(render_snapshot(snapshot))
    return 0


def _command_health(args: argparse.Namespace) -> int:
    from repro.analysis import corpus_health

    if args.dataset is not None:
        dataset = TaggingDataset.from_jsonl(args.dataset)
    else:
        dataset = paper_scenario(n=args.resources, seed=args.seed).dataset
    print(corpus_health(dataset).render())
    return 0


def _parse_budgets(pairs: list[str]) -> dict[str, int]:
    budgets: dict[str, int] = {}
    for pair in pairs:
        user, sep, amount = pair.partition("=")
        if not sep or not user:
            raise SystemExit(f"serve: --budget expects USER=UNITS, got {pair!r}")
        try:
            budgets[user] = int(amount)
        except ValueError:
            raise SystemExit(f"serve: budget for {user!r} must be an int, got {amount!r}")
    return budgets


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import signal

    from repro import obs
    from repro.api import ServerSpec
    from repro.server import Scheduler

    spec = ServerSpec(
        root=str(args.root),
        slots=args.slots,
        max_queued=args.max_queued,
        checkpoint_every=args.checkpoint_every,
        budgets=_parse_budgets(args.budget),
        default_budget=args.default_budget,
        telemetry=_telemetry_spec(args),
    )

    async def _run() -> None:
        scheduler = Scheduler(spec)
        if args.until_idle:
            scheduler.poll_once()
            await scheduler.run_until_idle()
            return
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, shutdown.set)
        print(f"serving campaigns from {args.root} ({spec.slots} slots); Ctrl-C to stop")
        await scheduler.serve(poll_interval=args.poll_interval, shutdown=shutdown)

    telemetry_spec = spec.telemetry
    if telemetry_spec is not None and telemetry_spec.enabled:
        recorder = obs.Telemetry(trace_path=telemetry_spec.trace_path)
        with obs.activated(recorder):
            asyncio.run(_run())
        print(obs.render_snapshot(recorder.snapshot()))
        recorder.close()
    else:
        asyncio.run(_run())
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.api import JobSpec, spec_from_json
    from repro.core.errors import ReproError

    try:
        spec = spec_from_json(args.spec.read_text(encoding="utf-8"))
    except (OSError, ReproError) as exc:
        print(f"submit: cannot load {args.spec}: {exc}", file=sys.stderr)
        return 1
    if isinstance(spec, CampaignSpec):
        spec = JobSpec(campaign=spec, user=args.user or "anonymous")
    elif isinstance(spec, JobSpec):
        if args.user is not None and args.user != spec.user:
            spec = spec.replace(user=args.user)
    else:
        print(f"submit: {args.spec} is a {spec.TYPE!r} spec, not a campaign/job",
              file=sys.stderr)
        return 1
    inbox = args.root / "inbox"
    inbox.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    serial = sum(1 for _ in inbox.glob(f"{stamp}-*.json"))
    name = f"{stamp}-{serial:03d}.json"
    (inbox / name).write_text(spec.to_json() + "\n", encoding="utf-8")
    print(f"queued {name} for user {spec.user!r} in {inbox}")
    receipt_path = inbox / "processed" / (name + ".receipt")
    deadline = time.monotonic() + args.wait
    while args.wait and time.monotonic() < deadline:
        if receipt_path.exists():
            receipt = json.loads(receipt_path.read_text(encoding="utf-8"))
            if "job_id" in receipt:
                print(f"accepted as {receipt['job_id']}")
                return 0
            print(f"rejected: {receipt.get('error', 'unknown error')}", file=sys.stderr)
            return 1
        time.sleep(0.05)
    if args.wait:
        print("no receipt yet (is the server running?)", file=sys.stderr)
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.server import JobStore

    if not (args.root / "journal.jsonl").exists():
        print(f"jobs: no server state at {args.root}", file=sys.stderr)
        return 1
    store = JobStore(args.root)
    listing = store.jobs()
    if not listing:
        print("no jobs")
        return 0
    print(f"{'JOB':<10} {'USER':<12} {'STATE':<13} {'EPOCHS':>6} {'SPENT':>6} {'CKPT':>5}")
    for job in listing:
        checkpoint = str(job.checkpoint_epoch) if job.checkpoint_epoch >= 0 else "-"
        print(f"{job.job_id:<10} {job.user:<12} {job.state.value:<13} "
              f"{job.epochs:>6} {job.spent:>6} {checkpoint:>5}")
    return 0


def _command_job(args: argparse.Namespace) -> int:
    from repro.server import JobStore

    actions = [name for name in ("pause", "resume", "cancel") if getattr(args, name)]
    if actions:
        control = args.root / "control"
        control.mkdir(parents=True, exist_ok=True)
        (control / f"{args.job_id}.{actions[0]}").touch()
        print(f"requested {actions[0]} of {args.job_id} "
              "(applied at the job's next epoch boundary)")
        return 0
    if not (args.root / "journal.jsonl").exists():
        print(f"job: no server state at {args.root}", file=sys.stderr)
        return 1
    store = JobStore(args.root)
    try:
        job = store.get(args.job_id)
    except KeyError:
        print(f"job: unknown job {args.job_id!r}", file=sys.stderr)
        return 1
    print(job.record().to_json(indent=2))
    return 0


def _parse_pack_params(pairs: list[str]) -> dict:
    """``NAME=VALUE`` overrides; values parse as JSON, else stay strings."""
    import json

    params: dict = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise SystemExit(f"packs build: --param expects NAME=VALUE, got {pair!r}")
        try:
            params[name] = json.loads(raw)
        except json.JSONDecodeError:
            params[name] = raw
    return params


def _command_packs(args: argparse.Namespace) -> int:
    from repro.core.errors import ReproError
    from repro.packs import PACKS, PackSpec, build_pack

    if args.packs_command == "list":
        print(f"{'PACK':<20} {'FAMILY':<18} {'FILTERS':<9} DESCRIPTION")
        for entry in PACKS.entries():
            mode = "drop" if entry.enforce else "report"
            print(f"{entry.name:<20} {entry.family:<18} {mode:<9} {entry.doc}")
        return 0

    try:
        if args.packs_command == "show":
            entry = PACKS.get(args.name)
            print(f"{entry.name} (family {entry.family})")
            print(f"  {entry.doc}")
            if entry.source:
                print(f"  source: {entry.source}")
            print(f"  filters: {', '.join(entry.filters)} "
                  f"({'drop flagged' if entry.enforce else 'report only'})")
            if entry.params:
                print("  parameters:")
                for name, param in sorted(entry.params.items()):
                    print(f"    {name:<16} {param.type.__name__:<6} "
                          f"default={param.default!r}  {param.doc}")
            else:
                print("  parameters: (none)")
            return 0

        # build
        spec = PackSpec(
            name=args.name, seed=args.seed, params=_parse_pack_params(args.param)
        )
        build = build_pack(spec)
        dataset = build.corpus.dataset
        print(f"built {spec.name} seed={spec.seed} "
              f"params={spec.resolved_params()}: "
              f"{len(dataset)} resources / {dataset.total_posts} posts")
        print(build.report.render())
        if args.output is not None:
            dataset.to_jsonl(args.output)
            print(f"wrote corpus to {args.output}")
        return 0
    except ReproError as exc:
        print(f"packs {args.packs_command}: {exc}", file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: Argument vector (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.faults:
        from repro import faults

        faults.activate(args.faults)
    handlers = {
        "generate": _command_generate,
        "analyze": _command_analyze,
        "allocate": _command_allocate,
        "experiment": _command_experiment,
        "case-study": _command_case_study,
        "campaign": _command_campaign,
        "ingest": _command_ingest,
        "health": _command_health,
        "stats": _command_stats,
        "packs": _command_packs,
        "serve": _command_serve,
        "submit": _command_submit,
        "jobs": _command_jobs,
        "job": _command_job,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
