"""Command-line interface: ``repro-tagging <command>``.

Commands:

* ``generate`` — synthesise a corpus and write it to JSONL;
* ``analyze``  — corpus health: stable points, over/under-tagging, waste;
* ``allocate`` — run one strategy on a corpus and report quality;
* ``experiment`` — regenerate a figure/table of the paper;
* ``case-study`` — print the Tables VI/VII top-10 comparisons;
* ``ingest`` — stream an interleaved event log through the vectorized
  engine (optionally sharded / checkpointed);
* ``stats`` — render a telemetry snapshot, ``RunResult`` JSON, or
  Chrome-trace JSONL as latency/counter tables.

The run-style commands (``allocate``, ``campaign``, ``ingest``) are pure
argv→spec translators: each builds the matching :mod:`repro.api` spec
and prints ``repro.api.run(spec).summary``, so anything the CLI does is
one serializable spec away from being queued, stored, or replayed from
Python.  Strategy names (and which strategies accept ``--omega``) come
from the strategy registry's declared schemas — no signature guessing.

All three run-style commands accept ``--telemetry`` (print a latency /
counter report after the summary) and ``--telemetry-out PATH`` (stream
a Chrome-trace JSONL while running); both simply populate the spec's
:class:`~repro.api.TelemetrySpec`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import repro
import repro.api as api
from repro.api import (
    AllocateSpec,
    CampaignSpec,
    CorpusSpec,
    IngestSpec,
    STRATEGIES,
    TelemetrySpec,
)
from repro.allocation.monitor import MONITOR_BACKENDS
from repro.core.dataset import TaggingDataset
from repro.experiments import (
    DEFAULT_SCALE,
    ExperimentHarness,
    ExperimentScale,
    budget_to_stability,
    figure_1a,
    figure_1b,
    figure_3,
    figure_5,
    figure_6abcd,
    figure_6e,
    figure_6f,
    figure_7a,
    figure_7b,
    intro_statistics,
    render_figure_6a,
    render_figure_6b,
    render_figure_6c,
    render_figure_6d,
    run_case_study,
    running_example,
    runtime_vs_budget,
    runtime_vs_resources,
)
from repro.simulate import case_study_scenario, paper_scenario

__all__ = ["main", "build_parser"]


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record run telemetry and print a latency/counter report",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="stream a Chrome-trace JSONL here (implies --telemetry)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-tagging",
        description="Reproduction of 'On Incentive-based Tagging' (ICDE 2013)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro.__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic corpus")
    generate.add_argument("output", type=Path, help="output JSONL path")
    generate.add_argument("--resources", type=int, default=200)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument(
        "--universe", action="store_true", help="heavy-tailed universe instead of a filtered corpus"
    )

    analyze = sub.add_parser("analyze", help="corpus health statistics")
    analyze.add_argument("dataset", type=Path, nargs="?", help="JSONL corpus (default: generated)")
    analyze.add_argument("--resources", type=int, default=150)
    analyze.add_argument("--seed", type=int, default=7)

    allocate = sub.add_parser("allocate", help="run an allocation strategy")
    allocate.add_argument("strategy", choices=STRATEGIES.names())
    allocate.add_argument("--budget", type=int, default=500)
    allocate.add_argument("--resources", type=int, default=150)
    allocate.add_argument("--seed", type=int, default=7)
    allocate.add_argument("--omega", type=int, default=5)
    allocate.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="batched CHOOSE chunk size (traces are identical at any value)",
    )
    allocate.add_argument(
        "--stability",
        choices=list(MONITOR_BACKENDS),
        default=None,
        help="monitor observed stability during the run",
    )
    _add_telemetry_args(allocate)

    experiment = sub.add_parser("experiment", help="regenerate a paper figure/table")
    experiment.add_argument(
        "figure",
        choices=[
            "fig1a", "fig1b", "fig3", "fig5", "fig6a", "fig6b", "fig6c", "fig6d",
            "fig6e", "fig6f", "fig6g", "fig6h", "fig7a", "fig7b",
            "table2", "intro", "stability-budget",
        ],
    )
    experiment.add_argument("--resources", type=int, default=None)
    experiment.add_argument("--seed", type=int, default=None)

    case = sub.add_parser("case-study", help="Tables VI/VII top-10 comparisons")
    case.add_argument("--budget", type=int, default=2500)
    case.add_argument("--seed", type=int, default=1)

    campaign = sub.add_parser(
        "campaign", help="run the incentive-tagging service prototype"
    )
    campaign.add_argument("strategy", choices=STRATEGIES.names(), nargs="?", default="FP")
    campaign.add_argument("--budget", type=int, default=600)
    campaign.add_argument("--resources", type=int, default=40)
    campaign.add_argument("--workers", type=int, default=10)
    campaign.add_argument("--seed", type=int, default=7)
    campaign.add_argument(
        "--no-adaptive-stop", action="store_true", help="disable online stopping"
    )
    campaign.add_argument(
        "--stability",
        choices=list(MONITOR_BACKENDS),
        default=None,
        help="stability backend for adaptive stopping (default: tracker)",
    )
    campaign.add_argument(
        "--engine",
        action="store_true",
        help="shorthand for --stability engine (kept for compatibility)",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count of the sharded stability backend",
    )
    campaign.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="ingest shard buffers on a thread pool of this size "
        "(0 = serial; traces are identical either way)",
    )
    _add_telemetry_args(campaign)

    ingest = sub.add_parser(
        "ingest", help="stream tagging events through the vectorized engine"
    )
    ingest.add_argument(
        "dataset", type=Path, nargs="?", help="JSONL corpus to replay (default: synthetic stream)"
    )
    ingest.add_argument("--resources", type=int, default=500)
    ingest.add_argument("--seed", type=int, default=7)
    ingest.add_argument("--shards", type=int, default=1)
    ingest.add_argument(
        "--workers",
        type=int,
        default=0,
        help="ingest shard slices on a thread pool of this size "
        "(0 = serial; needs --shards > 1; results are identical)",
    )
    ingest.add_argument("--batch-size", type=int, default=4096)
    ingest.add_argument("--omega", type=int, default=5)
    ingest.add_argument("--tau", type=float, default=0.99)
    ingest.add_argument(
        "--max-events", type=int, default=None, help="cap the synthetic stream length"
    )
    ingest.add_argument(
        "--checkpoint", type=Path, default=None, help="write a checkpoint here at the end"
    )
    ingest.add_argument(
        "--resume", type=Path, default=None, help="resume from a checkpoint directory"
    )
    _add_telemetry_args(ingest)

    health = sub.add_parser("health", help="full corpus health report")
    health.add_argument("dataset", type=Path, nargs="?", help="JSONL corpus (default: generated)")
    health.add_argument("--resources", type=int, default=100)
    health.add_argument("--seed", type=int, default=7)

    stats = sub.add_parser(
        "stats", help="render telemetry (snapshot JSON, RunResult JSON, or trace JSONL)"
    )
    stats.add_argument("path", type=Path, help="telemetry file to render")

    return parser


def _scale_for(args: argparse.Namespace) -> ExperimentScale:
    from dataclasses import replace

    scale = DEFAULT_SCALE
    overrides = {}
    if args.resources is not None:
        # Budgets are meaningful relative to corpus size: shrink or grow
        # every grid proportionally with the resource count.
        factor = args.resources / scale.n_resources
        overrides["n_resources"] = args.resources
        overrides["budgets"] = tuple(
            sorted({int(round(b * factor)) for b in scale.budgets})
        )
        overrides["dp_budgets"] = tuple(
            sorted({int(round(b * factor)) for b in scale.dp_budgets})
        )
        overrides["omega_sweep_budget"] = max(1, int(scale.omega_sweep_budget * factor))
        overrides["resource_counts"] = tuple(
            sorted({max(2, int(round(n * factor))) for n in scale.resource_counts})
        )
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        scale = replace(scale, **overrides)
    return scale


def _command_generate(args: argparse.Namespace) -> int:
    spec = CorpusSpec(
        kind="universe" if args.universe else "paper",
        resources=args.resources,
        seed=args.seed,
    )
    corpus = api.materialize(spec)
    corpus.dataset.to_jsonl(args.output)
    print(
        f"wrote {len(corpus.dataset)} resources / {corpus.dataset.total_posts} posts "
        f"to {args.output}"
    )
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    if args.dataset is not None:
        dataset = TaggingDataset.from_jsonl(args.dataset)
        from repro.analysis import dataset_stable_points, summarize

        summary = dataset_stable_points(dataset)
        print(f"corpus: {dataset.name} ({len(dataset)} resources, {dataset.total_posts} posts)")
        defined = summary.stable_points[summary.stable_points >= 0]
        if len(defined):
            print(f"stable points: {summarize(defined).render()}")
        print(f"resources without a stable point: {len(dataset) - summary.num_stable}")
        return 0
    stats = intro_statistics(n=args.resources, seed=args.seed)
    print(stats.render())
    return 0


def _telemetry_spec(args: argparse.Namespace) -> TelemetrySpec | None:
    """The ``--telemetry[-out]`` flags as a spec component (or ``None``)."""
    if not (args.telemetry or args.telemetry_out is not None):
        return None
    return TelemetrySpec(
        enabled=True,
        trace_path=None if args.telemetry_out is None else str(args.telemetry_out),
    )


def _print_result(result: api.RunResult, args: argparse.Namespace) -> None:
    """Print a run's summary, plus its telemetry report when requested."""
    print(result.summary)
    if (args.telemetry or args.telemetry_out is not None) and result.telemetry:
        from repro.obs import render_snapshot

        print()
        print(render_snapshot(result.telemetry))


def _command_allocate(args: argparse.Namespace) -> int:
    spec = AllocateSpec(
        corpus=CorpusSpec(kind="paper", resources=args.resources, seed=args.seed),
        strategy=args.strategy,
        params=STRATEGIES.filter_params(args.strategy, omega=args.omega),
        budget=args.budget,
        batch_size=args.batch_size,
        stability=args.stability,
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    figure = args.figure
    if figure == "table2":
        print(running_example().render())
        return 0
    if figure == "fig1a":
        print(figure_1a().render())
        return 0
    if figure == "fig1b":
        print(figure_1b(n=args.resources or 5000, seed=args.seed or 0).render())
        return 0
    if figure == "fig3":
        print(figure_3(seed=args.seed or 0).render())
        return 0
    if figure == "fig5":
        print(figure_5(seed=args.seed or 0).render())
        return 0
    if figure == "intro":
        print(intro_statistics(n=args.resources or 250, seed=args.seed or 7).render())
        return 0

    scale = _scale_for(args)
    harness = ExperimentHarness.from_scale(scale)
    if figure in ("fig6a", "fig6b", "fig6c", "fig6d"):
        comparison = figure_6abcd(harness=harness)
        renderer = {
            "fig6a": render_figure_6a,
            "fig6b": render_figure_6b,
            "fig6c": render_figure_6c,
            "fig6d": render_figure_6d,
        }[figure]
        print(renderer(comparison))
    elif figure == "fig6e":
        print(figure_6e(harness=harness).render())
    elif figure == "fig6f":
        print(figure_6f(harness=harness).render())
    elif figure == "fig6g":
        print(runtime_vs_budget(harness=harness).render())
    elif figure == "fig6h":
        print(runtime_vs_resources(harness=harness).render())
    elif figure == "fig7a":
        print(figure_7a(harness=harness).render())
    elif figure == "fig7b":
        print(figure_7b(figure_7a(harness=harness)).render())
    elif figure == "stability-budget":
        print(budget_to_stability(harness).render())
    return 0


def _command_case_study(args: argparse.Namespace) -> int:
    scenario = case_study_scenario(seed=args.seed)
    result = run_case_study(scenario, budget=args.budget)
    print(result.render())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    backend = args.stability or ("engine" if args.engine else "tracker")
    spec = CampaignSpec(
        corpus=CorpusSpec(kind="paper", resources=args.resources, seed=args.seed),
        strategy=args.strategy,
        budget=args.budget,
        workers=args.workers,
        seed=args.seed,
        stop_tau=None if args.no_adaptive_stop else 0.995,
        stability_backend=backend,
        stability_shards=args.shards,
        stability_executor="thread" if args.shard_workers > 0 else "serial",
        stability_workers=args.shard_workers,
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    spec = IngestSpec(
        dataset=None if args.dataset is None else str(args.dataset),
        resources=args.resources,
        seed=args.seed,
        shards=args.shards,
        executor="thread" if args.workers > 0 else "serial",
        workers=args.workers,
        batch_size=args.batch_size,
        omega=args.omega,
        tau=args.tau,
        max_events=args.max_events,
        checkpoint=None if args.checkpoint is None else str(args.checkpoint),
        resume=None if args.resume is None else str(args.resume),
        telemetry=_telemetry_spec(args),
    )
    _print_result(api.run(spec), args)
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    from repro.obs import load_stats, render_snapshot

    try:
        snapshot = load_stats(args.path)
    except OSError as exc:
        print(f"stats: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"stats: {args.path} is not telemetry data: {exc}", file=sys.stderr)
        return 1
    print(render_snapshot(snapshot))
    return 0


def _command_health(args: argparse.Namespace) -> int:
    from repro.analysis import corpus_health

    if args.dataset is not None:
        dataset = TaggingDataset.from_jsonl(args.dataset)
    else:
        dataset = paper_scenario(n=args.resources, seed=args.seed).dataset
    print(corpus_health(dataset).render())
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Args:
        argv: Argument vector (defaults to ``sys.argv[1:]``).

    Returns:
        Process exit code.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "analyze": _command_analyze,
        "allocate": _command_allocate,
        "experiment": _command_experiment,
        "case-study": _command_case_study,
        "campaign": _command_campaign,
        "ingest": _command_ingest,
        "health": _command_health,
        "stats": _command_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
