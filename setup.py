"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file exists only so that
``pip install -e .`` works on environments whose setuptools predates
self-contained PEP 660 editable installs (see the note in pyproject.toml).
"""

from setuptools import setup

setup()
